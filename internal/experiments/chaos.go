package experiments

import (
	"fmt"

	"rdmamon/internal/cluster"
	"rdmamon/internal/core"
	"rdmamon/internal/faults"
	"rdmamon/internal/scenario"
	"rdmamon/internal/sim"
	"rdmamon/internal/wire"
)

func init() {
	register("chaos", "randomized fault plans vs failover invariants (N seeds, deterministic per seed)",
		func(o Options) *Result { return Chaos(o).Result() })
}

// Chaos SLOs, in probe periods T. They are deliberately generous
// enough to hold under worst-case sweep stretching (every disturbed
// back-end costs the sequential probe cycle a full timeout), yet
// bounded — the invariant is that recovery happens within a known
// window, not that it is instant. EXPERIMENTS.md derives the numbers.
const (
	// chaosDetectSLO bounds crash -> no-more-dispatch (I1): after a
	// back-end has been down this long, routing a request to it while
	// eligible alternatives exist is a violation.
	chaosDetectSLO = 20
	// chaosStaleSLO bounds record age for undisturbed back-ends (I2).
	chaosStaleSLO = 10
	// chaosTripSLO bounds RDMA-break -> breaker-tripped (I3a).
	chaosTripSLO = 10
	// chaosFailBackSLO bounds repair -> fail-back (I3b): the re-arm
	// schedule retests at 1/ReArmEvery of the probe rate and needs
	// FailBackAfter consecutive successes, all under sweep stretching.
	chaosFailBackSLO = 30
)

// ChaosPoint is one seed's run under a randomized fault plan.
type ChaosPoint struct {
	Seed                      int64
	CrashN, LinkN, PartN, MRN int // plan shape

	Trips, FailBacks uint64 // breaker transitions across the fleet
	Fallbacks        uint64 // probes served over the socket standby
	ReArms           uint64 // background RDMA re-arm probes

	TripMaxT     float64 // slowest MR-event trip, in probe periods
	FailBackMaxT float64 // slowest MR-event fail-back, in probe periods
	StaleMaxT    float64 // worst undisturbed record age, in probe periods

	HybPushes    uint64  // delta pushes the hybrid twin's agents posted
	HybStaleMaxT float64 // twin's worst undisturbed record age (I6)

	Violations []string // invariant violations (empty = pass)
	ViolationN int      // total count (Violations is capped)

	Fingerprint string // deterministic run digest (I5 replay check)
}

// ChaosData holds the per-seed results.
type ChaosData struct {
	Points []ChaosPoint
}

// Chaos runs the randomized chaos harness: for each of Options.Seeds
// seeds it generates a random fault plan (crashes, lossy links,
// partitions, MR invalidations), runs a failover-armed RDMA-Sync
// cluster under RUBiS load, and checks the failover invariants:
//
//	I1  no request is dispatched to a crashed back-end once the crash
//	    is older than the detection SLO (while alternatives exist);
//	I2  every undisturbed back-end's record stays within the staleness
//	    SLO — over whichever transport;
//	I3  each MR invalidation trips the breaker within the trip SLO and
//	    fails back within the fail-back SLO of the repair;
//	I4  sequence numbers never regress on a single transport within an
//	    agent incarnation;
//	I5  a fixed seed replays bit-identically (checked for the first
//	    seed by running it twice);
//	I6  a hybrid-mode twin cluster under the SAME fault plan — pusher
//	    crashes mid-delta, invalidations of the front-end aggregation
//	    region, partitions while poll periods are decayed — keeps every
//	    undisturbed back-end within the staleness SLO, and its digest
//	    is part of the I5 replay check.
func Chaos(o Options) *ChaosData {
	cp, err := scenario.BuiltinChaos().Compile(o.Quick)
	if err != nil {
		// The builtin is covered by the golden tests; a compile failure
		// here is a programming error, not an input error.
		panic(err)
	}
	return chaosScenario(cp, o)
}

// chaosScenario runs the chaos invariant checker over a compiled
// scenario — the one driver behind both the legacy `-exp chaos` flags
// (via BuiltinChaos, bit-identical plans) and `-scenario` files with
// `checks: chaos`.
func chaosScenario(cp *scenario.Compiled, o Options) *ChaosData {
	n := o.Seeds
	if n <= 0 {
		n = cp.Points(0)
	}
	base := cp.BaseSeed(o.Seed)
	d := &ChaosData{Points: make([]ChaosPoint, n)}
	forEach(o, n, func(i int) {
		seed := cp.SeedAt(base, i)
		pt := chaosPoint(cp, seed)
		if i == 0 {
			replay := chaosPoint(cp, seed)
			if replay.Fingerprint != pt.Fingerprint {
				pt.Violations = append(pt.Violations,
					fmt.Sprintf("I5 determinism: replay of seed %d diverged", seed))
				pt.ViolationN++
			}
		}
		d.Points[i] = pt
	})
	return d
}

func chaosPoint(cp *scenario.Compiled, seed int64) ChaosPoint {
	poll := cp.Poll
	horizon := cp.Horizon
	repin := cp.MRRepin

	c := cluster.New(cp.ClusterConfig(seed, ""))
	plan := cp.Plan(seed)
	in := c.ApplyFaults(plan)

	ck := newChaosChecker(c, plan, poll, repin)
	ck.install(in)
	defer ck.ticker.Stop()

	pool := c.StartRUBiS(cp.Clients, cp.Think, seed+11)
	c.Run(horizon)

	ck.checkMREvents(horizon)
	pt := ck.point(seed, pool.Timeouts)

	// I6: the hybrid twin — same seed, same plan, push/pull monitoring.
	hyb := chaosHybridTwin(cp, seed, plan)
	pt.HybPushes = hyb.pushes
	pt.HybStaleMaxT = float64(hyb.staleMax) / float64(poll)
	pt.Violations = append(pt.Violations, hyb.violations...)
	pt.ViolationN += hyb.violationN
	pt.Fingerprint += " " + hyb.digest
	return pt
}

// hybridTwinStats is what the I6 twin run reports back.
type hybridTwinStats struct {
	pushes     uint64
	staleMax   sim.Time
	violations []string
	violationN int
	digest     string
}

// chaosHybridTwin replays the seed's fault plan against a cluster
// running the hybrid push/pull scheme and audits I6: every undisturbed
// back-end stays within the staleness SLO even though quiet back-ends
// are probed at a decayed period and rely on delta pushes landing in
// the front-end aggregation region. The twin's period ceiling (4T) and
// heartbeat (6T) are chosen so the all-pull staleness SLO (10T) is
// still the contract, not a relaxed one. Crashes kill pushers
// mid-delta, MR invalidations tear down the aggregation slots, and
// partitions strand decayed back-ends — all from the same plan the
// all-pull run survived.
func chaosHybridTwin(cp *scenario.Compiled, seed int64, plan faults.Plan) hybridTwinStats {
	poll, horizon := cp.Poll, cp.Horizon
	cfg := cp.ClusterConfig(seed, "")
	cfg.Hybrid = &core.HybridConfig{
		Period:    core.PeriodConfig{Min: poll, Max: 4 * poll},
		Heartbeat: 6 * poll,
		Check:     poll,
	}
	c := cluster.New(cfg)
	in := c.ApplyFaults(plan)

	st := hybridTwinStats{}
	violate := func(format string, args ...any) {
		st.violationN++
		if len(st.violations) < 8 {
			st.violations = append(st.violations, fmt.Sprintf(format, args...))
		}
	}

	eng := c.Eng
	down := make(map[int]bool)
	prevCrash, prevRestart := in.OnCrash, in.OnRestart
	in.OnCrash = func(node int) {
		if prevCrash != nil {
			prevCrash(node)
		}
		down[node] = true
	}
	in.OnRestart = func(node int) {
		if prevRestart != nil {
			prevRestart(node)
		}
		down[node] = false
	}

	warmup := 20 * poll
	stale := sim.Time(chaosStaleSLO) * poll
	ticker := eng.NewTicker(poll, func() {
		now := eng.Now()
		if now < warmup {
			return
		}
		for _, b := range c.Monitor.Backends() {
			if down[b] || planDisturbs(plan, poll, b, now) {
				continue
			}
			_, at, ok := c.Monitor.Latest(b)
			if !ok {
				violate("I6 hybrid staleness: node %d has no record by %v", b, now)
				continue
			}
			if age := now - at; age > st.staleMax {
				st.staleMax = age
			}
			if now-at > stale {
				violate("I6 hybrid staleness: node %d record is %v old at %v", b, now-at, now)
			}
		}
	})
	defer ticker.Stop()

	pool := c.StartRUBiS(cp.Clients, cp.Think, seed+11)
	c.Run(horizon)

	var skips, perrs, decayed uint64
	for _, p := range c.Pushers {
		if p != nil {
			st.pushes += p.Pushes
			skips += p.Skips
			perrs += p.Errors
		}
	}
	decayed = c.Monitor.Decayed
	var rx, torn uint64
	if c.Monitor.Sink != nil {
		rx = c.Monitor.Sink.Received
		torn = c.Monitor.Sink.Torn
	}
	seqs := ""
	for _, b := range c.Monitor.Backends() {
		rec, at, _ := c.Monitor.Probers[b].Latest()
		seqs += fmt.Sprintf("|%d:%d@%d", b, rec.Seq, at)
	}
	// The twin's digest joins the main fingerprint so I5's replay check
	// covers hybrid mode too: pushes, skips, errors, sink counters, the
	// decayed-probe count and final per-node records must all replay
	// bit-identically.
	st.digest = fmt.Sprintf("hyb: pushes=%d skips=%d perr=%d rx=%d torn=%d decay=%d stale=%d drop=%d served=%d tmo=%d hviol=%d seqs=%s",
		st.pushes, skips, perrs, rx, torn, decayed, st.staleMax,
		c.Monitor.StalePushes, c.TotalServed(), pool.Timeouts, st.violationN, seqs)
	return st
}

// chaosChecker audits one run against the invariants above.
type chaosChecker struct {
	c           *cluster.Cluster
	plan        faults.Plan
	poll, repin sim.Time

	down      map[int]bool     // crashed and not yet restarted
	downSince map[int]sim.Time // crash instant
	epoch     map[int]int      // agent incarnation (bumped on restart)

	lastSeq  map[int]map[core.Transport]uint32
	seqEpoch map[int]int

	trips     map[int][]sim.Time // breaker trip instants per back-end
	failbacks map[int][]sim.Time

	staleMax   sim.Time
	tripMax    sim.Time // worst measured MR-event trip latency
	fbMax      sim.Time // worst measured MR-event fail-back latency
	violations []string
	violationN int

	ticker *sim.Ticker
}

func newChaosChecker(c *cluster.Cluster, plan faults.Plan, poll, repin sim.Time) *chaosChecker {
	return &chaosChecker{
		c: c, plan: plan, poll: poll, repin: repin,
		down:      make(map[int]bool),
		downSince: make(map[int]sim.Time),
		epoch:     make(map[int]int),
		lastSeq:   make(map[int]map[core.Transport]uint32),
		seqEpoch:  make(map[int]int),
		trips:     make(map[int][]sim.Time),
		failbacks: make(map[int][]sim.Time),
	}
}

func (ck *chaosChecker) violate(format string, args ...any) {
	ck.violationN++
	if len(ck.violations) < 8 {
		ck.violations = append(ck.violations, fmt.Sprintf(format, args...))
	}
}

func (ck *chaosChecker) install(in *faults.Injector) {
	eng := ck.c.Eng
	// Crash/restart bookkeeping rides on the injector's hooks, after
	// the cluster's own handling (hooks are read at fire time, so
	// wrapping after ApplyFaults chains correctly).
	prevCrash, prevRestart := in.OnCrash, in.OnRestart
	in.OnCrash = func(node int) {
		if prevCrash != nil {
			prevCrash(node)
		}
		ck.down[node] = true
		ck.downSince[node] = eng.Now()
	}
	in.OnRestart = func(node int) {
		if prevRestart != nil {
			prevRestart(node)
		}
		ck.down[node] = false
		ck.epoch[node]++
	}

	// I1: audit every routing decision.
	detect := sim.Time(chaosDetectSLO) * ck.poll
	ck.c.Dispatcher.OnRoute = func(b int) {
		if !ck.down[b] || eng.Now() <= ck.downSince[b]+detect {
			return
		}
		if !ck.anyEligible() {
			// The whole fleet looks condemned: uniform fallback over
			// everyone is the policy's documented last resort.
			return
		}
		ck.violate("I1 dispatch: request routed to node %d, down since %v", b, ck.downSince[b])
	}

	for _, b := range ck.c.Monitor.Backends() {
		b := b
		// I3: timestamp breaker transitions.
		fo := ck.c.Monitor.Failover(b)
		fo.OnTrip = func() { ck.trips[b] = append(ck.trips[b], eng.Now()) }
		fo.OnFailBack = func() { ck.failbacks[b] = append(ck.failbacks[b], eng.Now()) }

		// I4: sequence numbers must not regress per (transport,
		// incarnation). A restart resets the agent's counter, so an
		// epoch bump clears the watermarks.
		p := ck.c.Monitor.Probers[b]
		p.OnRecord = func(rec wire.LoadRecord, _ sim.Time) {
			if ck.seqEpoch[b] != ck.epoch[b] {
				ck.seqEpoch[b] = ck.epoch[b]
				ck.lastSeq[b] = nil
			}
			if ck.lastSeq[b] == nil {
				ck.lastSeq[b] = make(map[core.Transport]uint32)
			}
			tr := p.LastTransport
			if last, ok := ck.lastSeq[b][tr]; ok && rec.Seq < last {
				ck.violate("I4 seq: node %d %s seq %d after %d", b, tr, rec.Seq, last)
			}
			ck.lastSeq[b][tr] = rec.Seq
		}
	}

	// I2: staleness sweep each probe period, after a warmup that lets
	// first records land.
	warmup := 20 * ck.poll
	stale := sim.Time(chaosStaleSLO) * ck.poll
	ck.ticker = eng.NewTicker(ck.poll, func() {
		now := eng.Now()
		if now < warmup {
			return
		}
		for _, b := range ck.c.Monitor.Backends() {
			if ck.down[b] || ck.disturbed(b, now) {
				continue
			}
			_, at, ok := ck.c.Monitor.Latest(b)
			if !ok {
				ck.violate("I2 staleness: node %d has no record by %v", b, now)
				continue
			}
			if age := now - at; age > ck.staleMax {
				ck.staleMax = age
			}
			if now-at > stale {
				ck.violate("I2 staleness: node %d record is %v old at %v", b, now-at, now)
			}
		}
	})
}

// disturbed reports whether a fault window (with detection/recovery
// slack) covers back-end b at time at. MR invalidations are pointedly
// absent: surviving one within the staleness SLO is what the failover
// path is for.
func (ck *chaosChecker) disturbed(b int, at sim.Time) bool {
	return planDisturbs(ck.plan, ck.poll, b, at)
}

// planDisturbs is the fault-window predicate shared by the all-pull
// checker (I2) and the hybrid twin (I6): both exempt back-ends inside
// a crash/partition/link window (plus recovery slack) from their
// staleness SLO.
func planDisturbs(plan faults.Plan, poll sim.Time, b int, at sim.Time) bool {
	slack := 10 * poll
	for _, cr := range plan.Crashes {
		if cr.Node == b && at >= cr.At-poll && at < cr.RestartAt+slack {
			return true
		}
	}
	for _, p := range plan.Partitions {
		if intsHave(p.A, b) || intsHave(p.B, b) {
			if at >= p.Start-poll && at < p.End+slack {
				return true
			}
		}
	}
	for _, l := range plan.Links {
		if l.To == b && at >= l.Start-poll && at < l.End+slack {
			return true
		}
	}
	return false
}

func (ck *chaosChecker) anyEligible() bool {
	for _, b := range ck.c.Monitor.Backends() {
		if !ck.down[b] && ck.c.Monitor.Health(b).Eligible() {
			return true
		}
	}
	return false
}

// checkMREvents runs the I3 checks once the run is over: each MR
// invalidation must have tripped the breaker within the trip SLO and
// failed back within the fail-back SLO of the re-pin. Events whose
// measurement window is polluted by another fault on the same node (or
// truncated by the horizon) are skipped — attribution would be
// guesswork. When the same node is invalidated again before its
// fail-back deadline, the breakage restarts: measurement defers to the
// last event of the chain, and an already-tripped node skips only the
// trip check (its fail-back from the fresh repair is still owed).
func (ck *chaosChecker) checkMREvents(horizon sim.Time) {
	tripSLO := sim.Time(chaosTripSLO) * ck.poll
	fbSLO := sim.Time(chaosFailBackSLO) * ck.poll
	for i, mi := range ck.plan.MRInvalidations {
		deadline := mi.At + ck.repin + fbSLO
		if deadline > horizon || ck.overlapped(mi.Node, mi.At-2*ck.poll, deadline) {
			continue
		}
		if ck.reinvalidated(i, deadline) {
			continue
		}
		if !ck.trippedAt(mi.Node, mi.At) {
			tripAt, ok := firstAfter(ck.trips[mi.Node], mi.At)
			if !ok || tripAt > mi.At+tripSLO {
				ck.violate("I3 trip: node %d MR invalidated at %v, no trip within %v", mi.Node, mi.At, tripSLO)
				continue
			}
			if lat := tripAt - mi.At; lat > ck.tripMax {
				ck.tripMax = lat
			}
		}
		// No fail-back can precede the re-pin (re-arm reads fail against
		// the dead key), so the first one after At is the one the fresh
		// repair earned.
		fbAt, ok := firstAfter(ck.failbacks[mi.Node], mi.At)
		if !ok || fbAt > deadline {
			ck.violate("I3 fail-back: node %d re-pinned at %v, no fail-back within %v", mi.Node, mi.At+ck.repin, fbSLO)
			continue
		}
		if lat := fbAt - (mi.At + ck.repin); lat > ck.fbMax {
			ck.fbMax = lat
		}
	}
}

// reinvalidated reports whether another MR event hits the same node
// after event i but before its fail-back deadline.
func (ck *chaosChecker) reinvalidated(i int, deadline sim.Time) bool {
	mi := ck.plan.MRInvalidations[i]
	for j, other := range ck.plan.MRInvalidations {
		if j != i && other.Node == mi.Node && other.At > mi.At && other.At <= deadline {
			return true
		}
	}
	return false
}

// overlapped reports whether any non-MR fault touches node b inside
// [from, to] — used to skip unattributable I3 measurements.
func (ck *chaosChecker) overlapped(b int, from, to sim.Time) bool {
	for _, cr := range ck.plan.Crashes {
		if cr.Node == b && cr.At < to && cr.RestartAt > from {
			return true
		}
	}
	for _, p := range ck.plan.Partitions {
		if (intsHave(p.A, b) || intsHave(p.B, b)) && p.Start < to && p.End > from {
			return true
		}
	}
	for _, l := range ck.plan.Links {
		if l.To == b && l.Start < to && l.End > from {
			return true
		}
	}
	return false
}

func (ck *chaosChecker) trippedAt(b int, t sim.Time) bool {
	n := 0
	for _, ts := range ck.trips[b] {
		if ts <= t {
			n++
		}
	}
	for _, ts := range ck.failbacks[b] {
		if ts <= t {
			n--
		}
	}
	return n > 0
}

func firstAfter(ts []sim.Time, t sim.Time) (sim.Time, bool) {
	for _, x := range ts {
		if x >= t {
			return x, true
		}
	}
	return 0, false
}

func intsHave(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func (ck *chaosChecker) point(seed int64, clientTmo uint64) ChaosPoint {
	pt := ChaosPoint{
		Seed:   seed,
		CrashN: len(ck.plan.Crashes), LinkN: len(ck.plan.Links),
		PartN: len(ck.plan.Partitions), MRN: len(ck.plan.MRInvalidations),
		Violations: ck.violations,
		ViolationN: ck.violationN,
	}
	seqs := ""
	for _, b := range ck.c.Monitor.Backends() {
		fo := ck.c.Monitor.Failover(b)
		p := ck.c.Monitor.Probers[b]
		pt.Trips += fo.Trips
		pt.FailBacks += fo.FailBacks
		pt.Fallbacks += p.Fallbacks
		pt.ReArms += p.ReArms
		rec, at, _ := p.Latest()
		seqs += fmt.Sprintf("|%d:%d@%d", b, rec.Seq, at)
	}
	pt.TripMaxT = float64(ck.tripMax) / float64(ck.poll)
	pt.FailBackMaxT = float64(ck.fbMax) / float64(ck.poll)
	pt.StaleMaxT = float64(ck.staleMax) / float64(ck.poll)
	// The fingerprint digests everything the run produced — counters,
	// final records, violations — so an I5 replay mismatch catches any
	// nondeterminism, not just one that changed a headline number.
	pt.Fingerprint = fmt.Sprintf("trips=%d fb=%d fall=%d rearm=%d served=%d routed=%d tmo=%d cyc=%d viol=%d stale=%d trip=%d fback=%d seqs=%s",
		pt.Trips, pt.FailBacks, pt.Fallbacks, pt.ReArms,
		ck.c.TotalServed(), ck.c.Dispatcher.Routed, clientTmo, ck.c.Monitor.Cycles,
		ck.violationN, ck.staleMax, ck.tripMax, ck.fbMax, seqs)
	return pt
}

// Result renders the chaos table.
func (d *ChaosData) Result() *Result {
	r := &Result{
		ID:    "chaos",
		Title: "Randomized transport-failover chaos: invariants across seeded fault plans",
		Columns: []string{"seed", "plan(c/l/p/m)", "trips", "failbk", "fallbk", "rearm",
			"trip(T)", "failbk(T)", "stale(T)", "pushes", "hyb stale(T)", "viol"},
	}
	total := 0
	for _, p := range d.Points {
		total += p.ViolationN
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", p.Seed),
			fmt.Sprintf("%d/%d/%d/%d", p.CrashN, p.LinkN, p.PartN, p.MRN),
			fmt.Sprintf("%d", p.Trips),
			fmt.Sprintf("%d", p.FailBacks),
			fmt.Sprintf("%d", p.Fallbacks),
			fmt.Sprintf("%d", p.ReArms),
			f1(p.TripMaxT),
			f1(p.FailBackMaxT),
			f1(p.StaleMaxT),
			fmt.Sprintf("%d", p.HybPushes),
			f1(p.HybStaleMaxT),
			fmt.Sprintf("%d", p.ViolationN),
		})
		for _, v := range p.Violations {
			r.Notes = append(r.Notes, fmt.Sprintf("seed %d: %s", p.Seed, v))
		}
	}
	if total > 0 {
		r.Failed = true
		r.Notes = append(r.Notes, fmt.Sprintf("FAILED: %d invariant violation(s)", total))
	} else {
		r.Notes = append(r.Notes, "all invariants held: crashed nodes shed traffic within the detection SLO, surviving nodes stayed within the staleness SLO over whichever transport, every clean MR invalidation tripped and failed back within SLO, sequence numbers never regressed per transport, the hybrid twin kept the same staleness SLO under the same fault plans, and the first seed (both modes) replayed bit-identically")
	}
	return r
}
