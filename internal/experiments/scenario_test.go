package experiments

import (
	"strings"
	"testing"

	"rdmamon/internal/scenario"
	"rdmamon/internal/sim"
)

func tinyScenario(minServed float64) *scenario.Scenario {
	return &scenario.Scenario{
		Name:    "tiny",
		Horizon: 2 * sim.Second,
		Fleet:   scenario.Fleet{Backends: 2},
		Workload: scenario.Workload{
			Kind: "rubis", Clients: 8, Think: 20 * sim.Millisecond,
		},
		Assertions: []scenario.Assertion{{Metric: "served", Min: &minServed}},
	}
}

// TestScenarioAssertionPassAndFail: the generic driver evaluates
// assertion blocks and flags the Result on failure — the path rmbench
// turns into a non-zero exit.
func TestScenarioAssertionPassAndFail(t *testing.T) {
	res, err := RunScenario(tinyScenario(10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("trivial floor failed: %+v", res.Notes)
	}
	joined := strings.Join(res.Notes, "\n")
	if !strings.Contains(joined, "PASS: base served") || !strings.Contains(joined, "all 1 assertion(s) passed") {
		t.Fatalf("missing pass verdicts in notes: %q", joined)
	}

	res, err = RunScenario(tinyScenario(1e12), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("unreachable floor did not fail the result")
	}
	if !strings.Contains(strings.Join(res.Notes, "\n"), "FAIL: base served") {
		t.Fatalf("missing fail verdict in notes: %+v", res.Notes)
	}
}

// TestScenarioVariantsDigestDeterminism: the same scenario run twice
// produces identical folded metrics (the replay check inside the
// driver guards one seed; this guards the whole report).
func TestScenarioVariantsDigestDeterminism(t *testing.T) {
	s := tinyScenario(10)
	s.Variants = []scenario.Variant{
		{Name: "ll", Policy: "least-load"},
		{Name: "rr", Policy: "round-robin"},
	}
	s.Assertions = nil
	a, err := RunScenario(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Failed || b.Failed {
		t.Fatalf("determinism replay tripped: %+v / %+v", a.Notes, b.Notes)
	}
	for i := range a.Rows {
		if strings.Join(a.Rows[i], "|") != strings.Join(b.Rows[i], "|") {
			t.Fatalf("row %d diverged across identical runs:\n%v\n%v", i, a.Rows[i], b.Rows[i])
		}
	}
}

// TestScenarioHeteroStudy runs the curated heterogeneous-fleet
// dispatch study end to end (quick mode) and requires its headline
// assertion to hold: weighted least-load beats round-robin on the
// staleness tail when 30% of the fleet is under-provisioned.
func TestScenarioHeteroStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-variant sweep")
	}
	res, err := RunScenarioFile("../../examples/scenarios/hetero-dispatch.yaml", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("hetero study assertions failed:\n%s", strings.Join(res.Notes, "\n"))
	}
}

// TestScenarioChecksRouting: checks scenarios run through the chaos/ha
// invariant checkers and come back under the scenario's name.
func TestScenarioChecksRouting(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos sweep")
	}
	res, err := RunScenario(scenario.BuiltinChaos(), Options{Quick: true, Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "chaos" {
		t.Fatalf("result ID %q", res.ID)
	}
	if res.Failed {
		t.Fatalf("builtin chaos scenario violated invariants:\n%s", strings.Join(res.Notes, "\n"))
	}
}
