package experiments

import (
	"fmt"
	"hash/fnv"
	"math"

	"rdmamon/internal/cluster"
	"rdmamon/internal/core"
	"rdmamon/internal/loadbalance"
	"rdmamon/internal/sim"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
)

func init() {
	register("history", "history-ring MRs: probe-WR amortization + trend-aware dispatch (256 back-ends)",
		func(o Options) *Result { return History(o).Result() })
}

// histK is the exported ring depth: one one-sided read returns the K
// newest samples, so a monitor polling at K×i sees the same timeline a
// point-record monitor needs K reads at period i to observe.
const histK = 8

// histInterval is the sample granularity i of both coverage modes: the
// point mode polls (and therefore samples) at i; the ring mode samples
// at i on the back-end and polls at K×i.
const histInterval = 10 * sim.Millisecond

// histWRRatio is the asserted probe-WR reduction: point-mode reads
// must be >= this multiple of ring-mode reads at equal coverage.
// Nominally the ratio is exactly histK; the margin absorbs edge reads
// at the window boundaries.
const histWRRatio = 0.9 * histK

// histSamplesPerWR is the asserted amortization of one ring read: each
// posted read must fold at least this many fresh samples on average.
const histSamplesPerWR = 0.75 * histK

// Dispatch-phase knobs: the monitor polls rings of histK samples taken
// every dispatchInterval, and the trend run projects each back-end
// dispatchHorizon ahead (two sweeps — roughly the dispatch latency the
// level-only policy cannot see across).
const (
	dispatchPoll     = 20 * sim.Millisecond
	dispatchInterval = 5 * sim.Millisecond
	dispatchHorizon  = 40 * sim.Millisecond
	dispatchEvery    = 5 * sim.Millisecond // audit pick cadence
)

// histPeakMargin is how much lower the trend run's peak landing index
// must be: ramping back-ends saturate exactly as level-only picks
// land, and the slope term is supposed to steer those picks away.
const histPeakMargin = 0.02

// HistoryCoveragePoint is one coverage mode's run over the same fleet.
type HistoryCoveragePoint struct {
	Mode     string // "point" or "ring"
	Backends int

	ProbeWRs     uint64  // one-sided reads posted in the window
	Samples      uint64  // distinct kernel samples observed
	SamplesPerWR float64 // amortization: samples bought per read
	Torn         uint64  // seqlock re-reads (benign, bounded)
	Errors       int
}

// HistoryDispatchPoint is one dispatch run: level-only vs trend-aware
// least-load over the same deterministic ramping workload. Each pick
// is scored by the picked back-end's ground-truth index one horizon
// later — the load a request dispatched now actually lands on.
type HistoryDispatchPoint struct {
	Mode string // "level" or "trend"

	Picks       uint64
	RamperPicks uint64 // picks that landed on a ramping back-end
	TrendPicks  uint64 // picks the slope term reordered
	PeakIdx     float64
	MeanIdx     float64
	Digest      uint64 // FNV-1a over the pick sequence + counters
	Errors      int
}

// HistoryData holds all runs and the pass/fail assessment.
type HistoryData struct {
	Coverage []HistoryCoveragePoint
	Dispatch []HistoryDispatchPoint
	ReplayB  uint64 // digest of the repeated trend run
	WRRatio  float64
	Failed   bool
	Notes    []string
}

// History exercises the e-RDMA-Sync++ history ring end to end:
//
//  1. Coverage — the same fleet monitored twice at equal sample
//     granularity i: point records polled at i vs K-slot rings polled
//     at K×i. One ring read must replace >= histWRRatio point reads
//     while observing the same samples.
//  2. Dispatch — least-load dispatch over a fleet where a minority of
//     back-ends ramp between idle and saturated. The trend-aware
//     policy (slope from ring windows, projected one horizon ahead)
//     must land its picks on lower ground-truth load at the peak than
//     the level-only policy, and must actually reorder some picks.
//  3. Replay — the trend run repeated under the same seed must produce
//     a bit-identical pick sequence and counters.
func History(o Options) *HistoryData {
	n := 256
	if o.Quick {
		n = 64
	}
	if o.Backends > 0 {
		n = o.Backends
	}

	d := &HistoryData{
		Coverage: make([]HistoryCoveragePoint, 2),
		Dispatch: make([]HistoryDispatchPoint, 2),
	}
	forEach(o, 5, func(i int) {
		switch i {
		case 0:
			d.Coverage[0] = historyCoverage(o, n, false)
		case 1:
			d.Coverage[1] = historyCoverage(o, n, true)
		case 2:
			d.Dispatch[0] = historyDispatch(o, n, false)
		case 3:
			d.Dispatch[1] = historyDispatch(o, n, true)
		case 4:
			d.ReplayB = historyDispatch(o, n, true).Digest
		}
	})

	point, ring := d.Coverage[0], d.Coverage[1]
	if ring.ProbeWRs > 0 {
		d.WRRatio = float64(point.ProbeWRs) / float64(ring.ProbeWRs)
	}
	if d.WRRatio < histWRRatio {
		d.fail("probe-WR reduction %.1fx, want >= %.1fx at sample granularity %v",
			d.WRRatio, histWRRatio, histInterval)
	}
	if ring.SamplesPerWR < histSamplesPerWR {
		d.fail("ring reads amortize %.1f samples/WR, want >= %.1f",
			ring.SamplesPerWR, histSamplesPerWR)
	}
	if ring.Samples < point.Samples*8/10 {
		d.fail("ring mode observed %d samples vs point mode's %d — coverage lost, not amortized",
			ring.Samples, point.Samples)
	}
	for _, p := range d.Coverage {
		if p.Errors > 0 {
			d.fail("%s coverage run saw %d probe errors", p.Mode, p.Errors)
		}
	}

	level, trend := d.Dispatch[0], d.Dispatch[1]
	if trend.PeakIdx > level.PeakIdx-histPeakMargin {
		d.fail("trend-aware peak landing index %.3f vs level-only %.3f, want lower by >= %.2f",
			trend.PeakIdx, level.PeakIdx, histPeakMargin)
	}
	if trend.TrendPicks == 0 {
		d.fail("trend run never reordered a pick — the slope signal is dead")
	}
	if level.TrendPicks != 0 {
		d.fail("level-only run counted %d trend picks — trend term leaked into the baseline", level.TrendPicks)
	}
	for _, p := range d.Dispatch {
		if p.Errors > 0 {
			d.fail("%s dispatch run saw %d probe errors", p.Mode, p.Errors)
		}
	}
	if trend.Digest != d.ReplayB {
		d.fail("seeded replay diverged: trend digest %016x vs %016x", trend.Digest, d.ReplayB)
	}
	return d
}

func (d *HistoryData) fail(format string, args ...interface{}) {
	d.Failed = true
	d.Notes = append(d.Notes, "VIOLATION: "+fmt.Sprintf(format, args...))
}

// historyShards/historyBatch: every run uses the sharded, doorbell-
// batched sweep of the scale tier — a sequential 256-probe cycle
// cannot finish inside a 10ms period, which would silently deflate
// the point mode's WR count and stale the dispatch runs' rings.
func historyShards(o Options) int {
	if o.Shards > 0 {
		return o.Shards
	}
	return 4
}

func historyBatch(o Options) int {
	if o.Batch > 0 {
		return o.Batch
	}
	return 32
}

// historyCoverage runs one coverage mode: a monitoring-only
// e-RDMA-Sync fleet with a deterministic flapping minority (so the
// observed samples actually change), counting one-sided reads and
// distinct observed samples over the measured window.
func historyCoverage(o Options, n int, ring bool) HistoryCoveragePoint {
	cfg := cluster.Config{
		Backends:      n,
		Scheme:        core.ERDMASync,
		Poll:          histInterval,
		Seed:          o.seed() + int64(n),
		NoServers:     true,
		MonitorShards: historyShards(o),
		MonitorBatch:  historyBatch(o),
	}
	if ring {
		cfg.Poll = histK * histInterval
		cfg.AgentInterval = histInterval
		cfg.HistoryK = histK
	}
	c := cluster.New(cfg)
	volatile := n / 32
	if volatile < 2 {
		volatile = 2
	}
	startFlappers(c, n, volatile)

	pt := HistoryCoveragePoint{Mode: "point", Backends: n}
	if ring {
		pt.Mode = "ring"
	}

	// Distinct-sample audit: ring folds are de-duplicated by kernel
	// timestamp inside the trend tracker (RingSamples); the point mode
	// counts records with a fresh timestamp as they arrive.
	var pointSamples uint64
	lastKT := make(map[int]int64)
	if !ring {
		for _, b := range c.Monitor.Backends() {
			b := b
			p := c.Monitor.Probers[b]
			p.OnRecord = func(rec wire.LoadRecord, _ sim.Time) {
				if rec.KTimeNS > lastKT[b] {
					lastKT[b] = rec.KTimeNS
					pointSamples++
				}
			}
		}
	}

	warm := 300 * sim.Millisecond
	dur := 2 * sim.Second
	if o.Quick {
		dur = sim.Second
	}
	c.Eng.RunUntil(warm)
	reads0 := c.FNIC.RDMAReads
	samples0, torn0, errs0 := historyProbeTotals(c)
	pointSamples = 0
	c.Eng.RunUntil(warm + dur)

	pt.ProbeWRs = c.FNIC.RDMAReads - reads0
	samples1, torn1, errs1 := historyProbeTotals(c)
	pt.Torn = torn1 - torn0
	pt.Errors = errs1 - errs0
	if ring {
		pt.Samples = samples1 - samples0
	} else {
		pt.Samples = pointSamples
	}
	if pt.ProbeWRs > 0 {
		pt.SamplesPerWR = float64(pt.Samples) / float64(pt.ProbeWRs)
	}
	return pt
}

// historyProbeTotals sums the fleet's ring-fold counters in backend
// order (deterministic — never iterate the prober map directly).
func historyProbeTotals(c *cluster.Cluster) (samples, torn uint64, errs int) {
	for _, b := range c.Monitor.Backends() {
		p := c.Monitor.Probers[b]
		samples += p.RingSamples
		torn += p.TornRetries
		errs += p.Errors
	}
	return samples, torn, errs
}

// startBaseline gives every non-ramping back-end a steady synthetic
// load: one CPU-bound task plus one light duty-cycle task, yielding a
// stable index around 0.22 that ramping back-ends dip below and climb
// through. Phases are staggered by id; no randomness.
func startBaseline(c *cluster.Cluster, rampers map[int]bool) {
	for b := 1; b <= len(c.Backends); b++ {
		if rampers[b] {
			continue
		}
		node := c.Backends[b-1]
		node.Spawn("base-busy", func(tk *simos.Task) {
			var cycle func()
			cycle = func() { tk.Compute(10*sim.Millisecond, cycle) }
			cycle()
		})
		phase := sim.Time(b%10) * sim.Millisecond
		node.Spawn("base-duty", func(tk *simos.Task) {
			var cycle func()
			cycle = func() {
				tk.Compute(2*sim.Millisecond, func() { tk.Sleep(8*sim.Millisecond, cycle) })
			}
			tk.Sleep(phase, cycle)
		})
	}
}

// startRampers drives the ramping minority: each ramper alternates
// 300ms fully idle with 300ms of two CPU-bound tasks. The kernel's
// 100ms utilisation window turns each edge into a linear ramp of the
// monitored index (0 -> ~0.375 and back), which is exactly the shape
// the trend term exists for: while the index is still below the
// baseline the level-only policy keeps dispatching onto a back-end
// that will have saturated by the time the requests land.
func startRampers(c *cluster.Cluster, n int) map[int]bool {
	count := n / 32
	if count < 2 {
		count = 2
	}
	ids := make(map[int]bool, count)
	for v := 0; v < count; v++ {
		b := 1 + v*(n/count)
		ids[b] = true
		node := c.Backends[b-1]
		for t := 0; t < 2; t++ {
			node.Spawn("ramper", func(tk *simos.Task) {
				var cycle func()
				cycle = func() {
					tk.Sleep(300*sim.Millisecond, func() {
						tk.Compute(300*sim.Millisecond, cycle)
					})
				}
				cycle()
			})
		}
	}
	return ids
}

// historyDispatch runs one dispatch mode over the deterministic
// ramping fleet, scoring every pick by the picked back-end's
// ground-truth weighted index one horizon later.
func historyDispatch(o Options, n int, trend bool) HistoryDispatchPoint {
	cfg := cluster.Config{
		Backends:      n,
		Scheme:        core.ERDMASync,
		Poll:          dispatchPoll,
		AgentInterval: dispatchInterval,
		HistoryK:      histK,
		Seed:          o.seed() + 7*int64(n),
		NoServers:     true,
		Policy:        cluster.PolicyLeastLoad,
		MonitorShards: historyShards(o),
		MonitorBatch:  historyBatch(o),
	}
	if trend {
		cfg.TrendHorizon = dispatchHorizon
	}
	c := cluster.New(cfg)
	rampers := startRampers(c, n)
	startBaseline(c, rampers)

	pt := HistoryDispatchPoint{Mode: "level"}
	if trend {
		pt.Mode = "trend"
	}
	wll := c.Policy.(*loadbalance.WeightedLeastLoad)
	weights := core.WeightsFor(core.ERDMASync)

	warm := 600 * sim.Millisecond
	dur := 2400 * sim.Millisecond
	if o.Quick {
		dur = 1200 * sim.Millisecond
	}
	c.Eng.RunUntil(warm)

	h := fnv.New64a()
	var sum float64
	var landed uint64
	audit := c.Eng.NewTicker(dispatchEvery, func() {
		b := c.Policy.Pick()
		var pick [2]byte
		pick[0], pick[1] = byte(b), byte(b>>8)
		h.Write(pick[:])
		pt.Picks++
		if rampers[b] {
			pt.RamperPicks++
		}
		c.Eng.After(dispatchHorizon, func() {
			idx := weights.Index(core.RecordFromSnapshot(c.Backends[b-1].K.Snapshot(), 0))
			if idx > pt.PeakIdx {
				pt.PeakIdx = idx
			}
			sum += idx
			landed++
		})
	})
	c.Eng.RunUntil(warm + dur)
	audit.Stop()
	// Let in-flight landing probes (scheduled before the cutoff) score.
	c.Eng.RunUntil(warm + dur + dispatchHorizon)

	if landed > 0 {
		pt.MeanIdx = sum / float64(landed)
	}
	pt.TrendPicks = wll.TrendPicks
	samples, _, errs := historyProbeTotals(c)
	pt.Errors = errs

	// Replay digest: pick sequence plus every counter that should be
	// seed-deterministic.
	for _, v := range []uint64{pt.Picks, pt.RamperPicks, pt.TrendPicks,
		math.Float64bits(pt.PeakIdx), math.Float64bits(pt.MeanIdx),
		c.FNIC.RDMAReads, samples} {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	pt.Digest = h.Sum64()
	return pt
}

// Result renders both phases and the asserted contracts.
func (d *HistoryData) Result() *Result {
	r := &Result{
		ID:    "history",
		Title: "History-ring MRs: one read replaces K point probes; trend-aware dispatch dodges ramps",
		Columns: []string{"phase", "mode", "probe WRs", "samples", "samples/WR",
			"peak idx", "mean idx", "trend picks", "errors"},
		Failed: d.Failed,
	}
	for _, p := range d.Coverage {
		r.Rows = append(r.Rows, []string{
			"coverage", p.Mode,
			fmt.Sprintf("%d", p.ProbeWRs),
			fmt.Sprintf("%d", p.Samples),
			f1(p.SamplesPerWR),
			"-", "-", "-",
			fmt.Sprintf("%d", p.Errors),
		})
	}
	for _, p := range d.Dispatch {
		r.Rows = append(r.Rows, []string{
			"dispatch", p.Mode, "-", "-", "-",
			fmt.Sprintf("%.3f", p.PeakIdx),
			fmt.Sprintf("%.3f", p.MeanIdx),
			fmt.Sprintf("%d", p.TrendPicks),
			fmt.Sprintf("%d", p.Errors),
		})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("probe-WR reduction: %.1fx (criterion: >= %.1fx; one %d-slot ring read per sweep replaces %d point probes at sample granularity %v)",
			d.WRRatio, histWRRatio, histK, histK, histInterval),
		fmt.Sprintf("each dispatch pick scored by the picked back-end's ground-truth index %v later — the load the request actually lands on", dispatchHorizon),
		fmt.Sprintf("seeded replay: trend-run digest %016x reproduced bit-identically", d.Dispatch[1].Digest))
	r.Notes = append(r.Notes, d.Notes...)
	return r
}
