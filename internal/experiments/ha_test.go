package experiments

import (
	"testing"
)

// TestHADeterministicGolden is the ci determinism gate for one HA
// seed: the same seeded fault plan replayed twice must produce
// bit-identical result tables (the runner additionally replays its
// first seed internally and compares run fingerprints — a mismatch
// there surfaces as an H5 violation row, which the Failed check below
// would catch). Zero invariant violations is part of the golden
// contract.
func TestHADeterministicGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	run := func() *Result {
		res, err := Run("ha", Options{Seed: 424242, Quick: true, Seeds: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			t.Fatalf("ha run reported invariant violations:\n%v", res.Notes)
		}
		return res
	}
	diffResults(t, "ha", run(), run())
}

// TestHAQuickInvariants sweeps a couple of quick random fault plans
// over the replicated front-end and asserts the harness finds nothing:
// exactly-one-primary, epoch fencing, bounded takeover, epoch
// monotonicity and zero back-end cost must all hold.
func TestHAQuickInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	res, err := Run("ha", Options{Seed: 7, Quick: true, Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("invariant violations under quick HA plans:\n%v", res.Notes)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want one per seed", len(res.Rows))
	}
}
