package experiments

import (
	"rdmamon/internal/core"
	"rdmamon/internal/metrics"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/workload"
)

func init() {
	register("fig3", "probe latency vs back-end background threads (§5.1.1)",
		func(o Options) *Result { return Fig3(o).Result() })
}

// Fig3Data holds the Figure 3 series: mean probe latency (us) for each
// scheme as the number of background compute+communicate threads on
// the back-end grows.
type Fig3Data struct {
	Threads []int
	Mean    map[core.Scheme][]float64
	P99     map[core.Scheme][]float64
}

// Fig3 reproduces §5.1.1: the monitoring latency of the socket schemes
// grows linearly with background load while the RDMA schemes stay
// flat.
func Fig3(o Options) *Fig3Data {
	threads := []int{0, 2, 4, 8, 12, 16}
	if o.Quick {
		threads = []int{0, 4, 16}
	}
	schemes := core.FourSchemes()
	d := &Fig3Data{
		Threads: threads,
		Mean:    make(map[core.Scheme][]float64),
		P99:     make(map[core.Scheme][]float64),
	}
	for _, s := range schemes {
		d.Mean[s] = make([]float64, len(threads))
		d.P99[s] = make([]float64, len(threads))
	}
	type point struct{ si, ti int }
	var pts []point
	for si := range schemes {
		for ti := range threads {
			pts = append(pts, point{si, ti})
		}
	}
	forEach(o, len(pts), func(i int) {
		p := pts[i]
		lat := fig3Point(o, schemes[p.si], threads[p.ti])
		d.Mean[schemes[p.si]][p.ti] = lat.Mean()
		d.P99[schemes[p.si]][p.ti] = lat.Percentile(99)
	})
	return d
}

// fig3Point measures one (scheme, threads) cell: a front-end node
// probes a back-end running n background threads that compute and
// exchange messages with a peer server node (both loaded, as in the
// paper's shared-server emulation).
func fig3Point(o Options, s core.Scheme, n int) *metrics.Sample {
	eng := sim.NewEngine(o.seed() + int64(s)*1000 + int64(n))
	fab := simnet.NewFabric(eng, simnet.Defaults())
	front := simos.NewNode(eng, 0, simos.NodeDefaults())
	fnic := fab.Attach(front)
	backend := simos.NewNode(eng, 1, simos.NodeDefaults())
	bnic := fab.Attach(backend)
	peer := simos.NewNode(eng, 2, simos.NodeDefaults())
	pnic := fab.Attach(peer)

	workload.StartEchoServers(backend, bnic, 2)
	workload.StartEchoServers(peer, pnic, 2)
	bg := workload.BackgroundDefaults()
	bg.Threads = n
	bg.Peer = 2
	workload.StartBackground(backend, bnic, bg)
	bg.Peer = 1
	workload.StartBackground(peer, pnic, bg)

	agent := core.StartAgent(backend, bnic, core.AgentConfig{Scheme: s})
	prober := core.StartProber(front, fnic, agent, 20*sim.Millisecond)

	dur := 8 * sim.Second
	if o.Quick {
		dur = 2 * sim.Second
	}
	// Warm up half a second before trusting latencies.
	eng.RunUntil(500 * sim.Millisecond)
	prober.Latency = metrics.Sample{}
	eng.RunUntil(500*sim.Millisecond + dur)
	return &prober.Latency
}

// Result renders the figure as a table.
func (d *Fig3Data) Result() *Result {
	r := &Result{
		ID:      "fig3",
		Title:   "Monitoring latency (us, mean) vs background threads",
		Columns: []string{"threads"},
	}
	for _, s := range core.FourSchemes() {
		r.Columns = append(r.Columns, s.String())
	}
	for ti, th := range d.Threads {
		row := []string{f1(float64(th))}
		for _, s := range core.FourSchemes() {
			row = append(row, f1(d.Mean[s][ti]))
		}
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes,
		"expected shape: Socket-* grow ~linearly with threads; RDMA-* flat (paper Fig 3)")
	return r
}
