package experiments

import "testing"

// TestScaleQuickSpeedup runs the quick sweep and asserts the tentpole
// shape holds even at its reduced fleet sizes: the batched+sharded
// engine beats the sequential monitor by >= 4x at the largest quick
// fleet, with zero probe errors and zero sequence regressions at every
// cell (those set Failed in any mode).
func TestScaleQuickSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	d := Scale(Options{Quick: true})
	if d.Failed {
		t.Fatalf("quick scale sweep reported violations:\n%v", d.Notes)
	}
	last := d.Points[len(d.Points)-1]
	if last.Speedup < 4 {
		t.Fatalf("speedup %.1fx at %d back-ends, want >= 4x", last.Speedup, last.Backends)
	}
	for _, p := range d.Points {
		if p.Cycles == 0 {
			t.Fatalf("no sweeps at n=%d s=%d b=%d", p.Backends, p.Shards, p.Batch)
		}
	}
}

// TestScalePinnedPoint exercises the rmbench -backends/-shards/-batch
// pins: one fleet size, the pinned config plus its sequential baseline.
func TestScalePinnedPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	d := Scale(Options{Quick: true, Backends: 32, Shards: 2, Batch: 8})
	if len(d.Points) != 2 {
		t.Fatalf("pinned sweep has %d points, want 2 (baseline + pinned)", len(d.Points))
	}
	if d.Points[0].Shards != 1 || d.Points[0].Batch != 1 {
		t.Fatalf("first point %+v is not the sequential baseline", d.Points[0])
	}
	p := d.Points[1]
	if p.Backends != 32 || p.Shards != 2 || p.Batch != 8 {
		t.Fatalf("pinned point %+v", p)
	}
	if p.Speedup <= 1 {
		t.Fatalf("pinned config speedup %.1fx, want > 1x", p.Speedup)
	}
}
