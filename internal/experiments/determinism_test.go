package experiments

import (
	"testing"
)

// diffResults compares two runs of the same experiment and reports the
// first divergent series (row/column) with both values — the failure
// message a determinism regression needs to be debuggable.
func diffResults(t *testing.T, id string, a, b *Result) {
	t.Helper()
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("%s: row count diverged: %d vs %d", id, len(a.Rows), len(b.Rows))
	}
	for ri := range a.Rows {
		ra, rb := a.Rows[ri], b.Rows[ri]
		if len(ra) != len(rb) {
			t.Fatalf("%s: row %d width diverged: %v vs %v", id, ri, ra, rb)
		}
		for ci := range ra {
			if ra[ci] != rb[ci] {
				series := "?"
				if ci < len(a.Columns) {
					series = a.Columns[ci]
				}
				label := ""
				if len(ra) > 0 {
					label = ra[0]
				}
				t.Fatalf("%s: first divergent series %q at row %q: run1=%q run2=%q",
					id, series, label, ra[ci], rb[ci])
			}
		}
	}
}

// run executes one experiment with a pinned seed at quick scale.
func runOnce(t *testing.T, id string) *Result {
	t.Helper()
	res, err := Run(id, Options{Seed: 424242, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFig3Deterministic: the micro-benchmark must be bit-identical
// across two runs with the same seed.
func TestFig3Deterministic(t *testing.T) {
	diffResults(t, "fig3", runOnce(t, "fig3"), runOnce(t, "fig3"))
}

// TestFig7Deterministic: the full application-level experiment —
// cluster, RUBiS + Zipf workloads, tenant noise, dispatcher — must be
// bit-identical across two runs with the same seed.
func TestFig7Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	diffResults(t, "fig7", runOnce(t, "fig7"), runOnce(t, "fig7"))
}

// TestFaultsDeterministic: determinism must survive the fault plan —
// crashes, restarts, a lossy link window and an MR invalidation are
// all driven by the engine clock and the plan's seeded rand stream, so
// two runs must still agree bit-for-bit.
func TestFaultsDeterministic(t *testing.T) {
	diffResults(t, "faults", runOnce(t, "faults"), runOnce(t, "faults"))
}
