package experiments

import (
	"strings"
	"testing"

	"rdmamon/internal/core"
)

// quickOpts runs experiments at reduced scale; the shape assertions
// below are correspondingly loose (quick tails are noisy) but still
// verify the headline claims.
func quickOpts() Options { return Options{Quick: true} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"aa", "admit", "chaos", "faults", "fig3", "fig4", "fig5a", "fig5b", "fig6", "fig7", "fig8", "fig9", "ha", "history", "hybrid", "push", "reconfig", "scale", "table1"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs() = %v, want %v", got, want)
		}
	}
	for _, id := range got {
		if Title(id) == "" {
			t.Errorf("experiment %s has no title", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", quickOpts()); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestRenderProducesTable(t *testing.T) {
	res := &Result{
		ID: "x", Title: "t",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "4"}},
		Notes:   []string{"n"},
	}
	var sb strings.Builder
	res.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== x: t ==", "a", "1", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	d := Fig3(quickOpts())
	last := len(d.Threads) - 1
	for _, s := range []core.Scheme{core.SocketAsync, core.SocketSync} {
		if d.Mean[s][last] < 4*d.Mean[s][0] {
			t.Errorf("%v latency should grow with load: %v", s, d.Mean[s])
		}
	}
	for _, s := range []core.Scheme{core.RDMAAsync, core.RDMASync} {
		if d.Mean[s][last] > 1.5*d.Mean[s][0] {
			t.Errorf("%v latency should stay flat: %v", s, d.Mean[s])
		}
	}
	// RDMA is absolutely faster than sockets even unloaded.
	if d.Mean[core.RDMASync][0] >= d.Mean[core.SocketSync][0] {
		t.Error("RDMA probe should beat socket probe when idle")
	}
	res := d.Result()
	if len(res.Rows) != len(d.Threads) {
		t.Error("result rows mismatch")
	}
}

func TestFig4Shape(t *testing.T) {
	d := Fig4(quickOpts())
	// At the finest granularity the perturbation ordering holds and
	// RDMA-Sync is effectively free.
	fine := 0
	if d.Delay[core.RDMASync][fine] > 0.005 {
		t.Errorf("RDMA-Sync delay = %v, want ~0", d.Delay[core.RDMASync][fine])
	}
	if d.Delay[core.SocketAsync][fine] < 0.03 {
		t.Errorf("Socket-Async delay = %v, want noticeable at 1ms", d.Delay[core.SocketAsync][fine])
	}
	if d.Delay[core.SocketAsync][fine] < d.Delay[core.RDMAAsync][fine] {
		t.Error("Socket-Async should perturb more than RDMA-Async")
	}
	// Perturbation shrinks as granularity coarsens.
	last := len(d.GranularityMS) - 1
	if d.Delay[core.SocketAsync][last] > d.Delay[core.SocketAsync][fine]/4 {
		t.Error("coarse-grained socket monitoring should be much cheaper")
	}
}

func TestFig5Shape(t *testing.T) {
	d := Fig5(quickOpts())
	// RDMA-Sync is exact for runnable counts.
	if d.Threads[core.RDMASync].MeanAbs() > 0.2 {
		t.Errorf("RDMA-Sync thread deviation = %v, want ~0", d.Threads[core.RDMASync].MeanAbs())
	}
	if d.CPU[core.RDMASync].MeanAbs() > 1 {
		t.Errorf("RDMA-Sync CPU deviation = %v%%, want ~0", d.CPU[core.RDMASync].MeanAbs())
	}
	// Async schemes deviate visibly on both metrics.
	for _, s := range []core.Scheme{core.SocketAsync, core.RDMAAsync} {
		if d.Threads[s].MeanAbs() < 3*d.Threads[core.RDMASync].MeanAbs()+0.5 {
			t.Errorf("%v thread deviation should exceed RDMA-Sync's", s)
		}
		if d.CPU[s].MeanAbs() < 2 {
			t.Errorf("%v CPU deviation = %v, want > 2%%", s, d.CPU[s].MeanAbs())
		}
	}
	if d.ResultThreads() == nil || d.ResultCPU() == nil {
		t.Fatal("results should render")
	}
}

func TestFig6Shape(t *testing.T) {
	d := Fig6(quickOpts())
	rs := d.Stats[core.RDMASync]
	if rs.TotalSeen[1] == 0 {
		t.Fatal("RDMA-Sync should observe pending interrupts on CPU1")
	}
	for _, s := range []core.Scheme{core.SocketAsync, core.SocketSync, core.RDMAAsync} {
		st := d.Stats[s]
		if st.TotalSeen[1]*3 > rs.TotalSeen[1] {
			t.Errorf("%v observed %d pending IRQs, want far fewer than RDMA-Sync's %d",
				s, st.TotalSeen[1], rs.TotalSeen[1])
		}
	}
	// The NIC-affine CPU dominates.
	if rs.TotalSeen[0] >= rs.TotalSeen[1] {
		t.Error("pending interrupts should concentrate on CPU1 (NIC affinity)")
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	d := Table1(quickOpts())
	if len(d.Queries) != 8 {
		t.Fatalf("queries = %v", d.Queries)
	}
	// Averages exist and sit in a plausible band for every scheme.
	for _, s := range core.Schemes() {
		for _, q := range d.Queries {
			if d.Avg[s][q] <= 0 || d.Avg[s][q] > 100 {
				t.Fatalf("%v %s avg = %v, implausible", s, q, d.Avg[s][q])
			}
			if d.Max[s][q] < d.Avg[s][q] {
				t.Fatalf("%v %s max < avg", s, q)
			}
		}
	}
	// Aggregate maxima: the kernel-direct schemes beat Socket-Async.
	sum := func(s core.Scheme) (v float64) {
		for _, q := range d.Queries {
			v += d.Max[s][q]
		}
		return v
	}
	if sum(core.ERDMASync) >= sum(core.SocketAsync) {
		t.Errorf("e-RDMA-Sync total max (%v) should beat Socket-Async (%v)",
			sum(core.ERDMASync), sum(core.SocketAsync))
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	d := Fig7(quickOpts())
	for ai := range d.Alphas {
		if d.Throughput[core.SocketAsync][ai] <= 0 {
			t.Fatal("no baseline throughput")
		}
		if imp := d.Improvement(core.RDMASync, ai); imp < 0.05 {
			t.Errorf("RDMA-Sync improvement at alpha=%v is %.1f%%, want >5%%",
				d.Alphas[ai], imp*100)
		}
	}
	res := d.Result()
	if len(res.Rows) != len(d.Alphas) {
		t.Error("result rows mismatch")
	}
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	d := Fig9(quickOpts())
	// RDMA-Sync gains from finer granularity.
	fine, coarse := 0, len(d.GranularityMS)-1
	rs := d.Throughput[core.RDMASync]
	if rs[fine] <= rs[coarse] {
		t.Errorf("RDMA-Sync should gain from fine granularity: %v", rs)
	}
	// At the finest granularity RDMA-Sync leads the socket schemes.
	if rs[fine] <= d.Throughput[core.SocketAsync][fine] {
		t.Error("RDMA-Sync should lead Socket-Async at 64ms")
	}
}

func TestFig8Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	// Fig 8 maxima are too noisy for shape assertions at quick scale;
	// assert structure and positivity only.
	d := Fig8(quickOpts())
	for _, s := range core.FourSchemes() {
		for gi := range d.GranularityMS {
			if d.MaxSearch[s][gi] <= 0 || d.MaxBrowse[s][gi] <= 0 {
				t.Fatalf("%v missing data at granularity %d", s, d.GranularityMS[gi])
			}
		}
	}
}

func TestRunAllRegistered(t *testing.T) {
	// Smoke: every registered experiment renders through Run.
	for _, id := range []string{"fig3", "fig4"} {
		res, err := Run(id, quickOpts())
		if err != nil || res == nil || len(res.Rows) == 0 {
			t.Fatalf("Run(%s) = %v, %v", id, res, err)
		}
	}
}

func TestExtensionAdmitShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	d := Admit(quickOpts())
	si := -1
	ei := -1
	for i, s := range d.Schemes {
		if s == core.SocketAsync {
			si = i
		}
		if s == core.ERDMASync {
			ei = i
		}
	}
	if d.GoodPut[ei] <= d.GoodPut[si] {
		t.Errorf("e-RDMA-Sync goodput (%d) should beat Socket-Async (%d)",
			d.GoodPut[ei], d.GoodPut[si])
	}
	for i := range d.Schemes {
		if d.Served[i] == 0 {
			t.Fatalf("%v served nothing", d.Schemes[i])
		}
	}
}

func TestExtensionPushShape(t *testing.T) {
	d := Push(quickOpts())
	byName := map[string]PushRow{}
	for _, r := range d.Rows {
		byName[r.Name] = r
	}
	push, rdma := byName["Multicast-Push"], byName["RDMA-Sync"]
	if push.RecordsPS == 0 || rdma.RecordsPS == 0 {
		t.Fatal("no records flowed")
	}
	// Push perturbs the back-end like the two-sided schemes do;
	// RDMA-Sync does not.
	if push.AppDelay < 5*rdma.AppDelay {
		t.Errorf("push app delay %.4f should far exceed RDMA-Sync's %.4f",
			push.AppDelay, rdma.AppDelay)
	}
}

func TestExtensionReconfigShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	d := Reconfig(quickOpts())
	byName := map[string]ReconfigRow{}
	for _, r := range d.Rows {
		byName[r.Name] = r
	}
	static := byName["static (no reconfig)"]
	rdma := byName["RDMA-Sync"]
	if rdma.Migrations == 0 {
		t.Fatal("controller should migrate under alternating surges")
	}
	if static.Migrations != 0 {
		t.Fatal("static configuration must not migrate")
	}
	if rdma.Served <= static.Served {
		t.Errorf("RDMA-Sync reconfiguration (%d served) should beat static (%d)",
			rdma.Served, static.Served)
	}
}

func TestRenderCSV(t *testing.T) {
	res := &Result{
		ID: "x", Title: "t",
		Columns: []string{"a", "b,c"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"n"},
	}
	var sb strings.Builder
	res.RenderCSV(&sb)
	out := sb.String()
	if !strings.Contains(out, "a,\"b,c\"") {
		t.Fatalf("header not escaped: %q", out)
	}
	if !strings.Contains(out, "1,2") || !strings.Contains(out, "# n") {
		t.Fatalf("csv body wrong: %q", out)
	}
}

func TestRenderPlot(t *testing.T) {
	res := &Result{
		ID: "x", Title: "t",
		Columns: []string{"threads", "latency"},
		Rows:    [][]string{{"0", "10.0"}, {"16", "40.0"}},
	}
	var sb strings.Builder
	res.RenderPlot(&sb)
	out := sb.String()
	if !strings.Contains(out, "latency") {
		t.Fatalf("missing series: %q", out)
	}
	lines := strings.Split(out, "\n")
	var bars []int
	for _, l := range lines {
		if strings.Contains(l, "|") {
			bars = append(bars, strings.Count(l, "#"))
		}
	}
	if len(bars) != 2 || bars[1] <= bars[0] {
		t.Fatalf("bar scaling wrong: %v in %q", bars, out)
	}
}

func TestParseNumericVariants(t *testing.T) {
	cases := map[string]float64{
		"12.5":     12.5,
		"+3.4%":    3.4,
		"64.0 max": 64,
	}
	for in, want := range cases {
		got, err := parseNumeric(in)
		if err != nil || got != want {
			t.Errorf("parseNumeric(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseNumeric("Socket-Async"); err == nil {
		t.Error("non-numeric should error")
	}
}
