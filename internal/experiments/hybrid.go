package experiments

import (
	"fmt"

	"rdmamon/internal/cluster"
	"rdmamon/internal/core"
	"rdmamon/internal/sim"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
)

func init() {
	register("hybrid", "hybrid push/pull vs all-pull: probe WRs at equal staleness bound (512 back-ends)",
		func(o Options) *Result { return Hybrid(o).Result() })
}

// hybridPoll is the fast-sweep period T both modes run at — the claim
// is about work requests at EQUAL staleness, so T is a constant.
const hybridPoll = 10 * sim.Millisecond

// hybridStaleSLO bounds effective staleness, in T, for BOTH modes: the
// headline contract is that the hybrid scheme keeps the all-pull bound
// while issuing a fraction of the probe work requests.
const hybridStaleSLO = 5

// hybridWRRatio is the headline work-request reduction the experiment
// asserts: all-pull probe reads >= this multiple of hybrid probe reads.
const hybridWRRatio = 10

// HybridPoint is one mode's run over the same fleet and workload.
type HybridPoint struct {
	Mode     string // "all-pull" or "hybrid"
	Backends int
	Volatile int

	ProbeWRs uint64 // one-sided probe reads posted in the window
	PushWRs  uint64 // one-sided delta writes posted in the window
	Decayed  uint64 // probe slots skipped by the adaptive period

	EffStaleMaxT float64 // worst effective staleness, in T
	AgeMaxT      float64 // worst raw cache age, in T

	Torn          uint64 // pushes failing validation (must be 0)
	StalePushes   uint64 // out-of-order pushes dropped (must be 0 here)
	Errors        int    // probe + push errors (must be 0)
	SeqViolations int    // per-transport sequence regressions (must be 0)
	NoRecord      int    // back-ends with no cached record after warmup
}

// HybridData holds both runs and the pass/fail assessment.
type HybridData struct {
	Points  []HybridPoint
	WRRatio float64 // all-pull probe WRs / hybrid probe WRs
	Failed  bool
	Notes   []string
}

// Hybrid runs the same fleet twice — the all-pull sharded sweep of the
// scale experiment, then the hybrid push/pull scheme — and asserts the
// headline contract: the hybrid run must match the all-pull staleness
// bound while issuing >= hybridWRRatio fewer probe work requests. A
// deterministic minority of back-ends flap between idle and busy so
// both runs monitor a mixed fleet; the rest stay quiet, which is where
// the hybrid scheme earns its reduction.
func Hybrid(o Options) *HybridData {
	n := 512
	if o.Quick {
		n = 64
	}
	if o.Backends > 0 {
		n = o.Backends
	}
	volatile := n / 32
	if volatile < 2 {
		volatile = 2
	}

	d := &HybridData{Points: make([]HybridPoint, 2)}
	forEach(o, 2, func(i int) {
		d.Points[i] = hybridPoint(o, n, volatile, i == 1)
	})

	pull, hyb := d.Points[0], d.Points[1]
	if hyb.ProbeWRs > 0 {
		d.WRRatio = float64(pull.ProbeWRs) / float64(hyb.ProbeWRs)
	}
	for _, p := range d.Points {
		if p.EffStaleMaxT > hybridStaleSLO {
			d.Failed = true
			d.Notes = append(d.Notes, fmt.Sprintf(
				"VIOLATION: %s effective staleness %.1fT exceeds the %dT bound",
				p.Mode, p.EffStaleMaxT, hybridStaleSLO))
		}
		if p.Errors > 0 || p.Torn > 0 {
			d.Failed = true
			d.Notes = append(d.Notes, fmt.Sprintf(
				"VIOLATION: %s saw %d errors, %d torn pushes", p.Mode, p.Errors, p.Torn))
		}
		if p.SeqViolations > 0 {
			d.Failed = true
			d.Notes = append(d.Notes, fmt.Sprintf(
				"VIOLATION: %s saw %d per-transport sequence regressions", p.Mode, p.SeqViolations))
		}
		if p.NoRecord > 0 {
			d.Failed = true
			d.Notes = append(d.Notes, fmt.Sprintf(
				"VIOLATION: %s left %d back-ends with no record", p.Mode, p.NoRecord))
		}
	}
	if d.WRRatio < hybridWRRatio {
		d.Failed = true
		d.Notes = append(d.Notes, fmt.Sprintf(
			"VIOLATION: probe-WR reduction %.1fx, want >= %dx at the same staleness bound",
			d.WRRatio, hybridWRRatio))
	}
	if hyb.PushWRs == 0 {
		d.Failed = true
		d.Notes = append(d.Notes, "VIOLATION: hybrid run posted no delta pushes")
	}
	return d
}

// hybridKnobs maps the option overrides onto the controller config.
func hybridKnobs(o Options) *core.HybridConfig {
	h := &core.HybridConfig{
		Threshold: o.PushThreshold,
		Period:    core.PeriodConfig{Min: hybridPoll, Max: 64 * hybridPoll},
		Heartbeat: 32 * hybridPoll,
		Check:     hybridPoll,
	}
	if o.PeriodMin > 0 {
		h.Period.Min = sim.Time(o.PeriodMin) * hybridPoll
	}
	if o.PeriodMax > 0 {
		h.Period.Max = sim.Time(o.PeriodMax) * hybridPoll
	}
	return h
}

// startFlappers runs the deterministic volatile minority: back-end
// volatileID(v) alternates a CPU-bound burst with idle sleep, phases
// and duty cycles staggered by index so changes land all over the
// sweep. No randomness — the runs must replay bit-identically.
func startFlappers(c *cluster.Cluster, n, volatile int) []int {
	ids := make([]int, 0, volatile)
	for v := 0; v < volatile; v++ {
		b := 1 + v*(n/volatile)
		ids = append(ids, b)
		node := c.Backends[b-1]
		on := sim.Time(80+10*(v%5)) * sim.Millisecond
		off := sim.Time(120+15*(v%7)) * sim.Millisecond
		phase := sim.Time(v*13) * sim.Millisecond
		node.Spawn("flapper", func(tk *simos.Task) {
			var cycle func()
			cycle = func() {
				tk.Compute(on, func() { tk.Sleep(off, cycle) })
			}
			tk.Sleep(phase, cycle)
		})
	}
	return ids
}

// hybridPoint runs one mode: a monitoring-only RDMA-Sync cluster (the
// experiment measures the monitoring planes, not the web servers) with
// the sharded/batched engine, a flapping minority, and the staleness
// audit sampling every T.
func hybridPoint(o Options, n, volatile int, hybrid bool) HybridPoint {
	shards, batch := 4, 32
	if o.Shards > 0 {
		shards = o.Shards
	}
	if o.Batch > 0 {
		batch = o.Batch
	}
	cfg := cluster.Config{
		Backends:      n,
		Scheme:        core.RDMASync,
		Poll:          hybridPoll,
		Seed:          o.seed() + int64(n),
		NoServers:     true,
		MonitorShards: shards,
		MonitorBatch:  batch,
	}
	var knobs *core.HybridConfig
	if hybrid {
		knobs = hybridKnobs(o)
		cfg.Hybrid = knobs
	}
	c := cluster.New(cfg)
	startFlappers(c, n, volatile)

	pt := HybridPoint{Mode: "all-pull", Backends: n, Volatile: volatile}
	if hybrid {
		pt.Mode = "hybrid"
	}

	// I4-style audit: per-(backend, transport) sequence watermarks. The
	// push transport has its own counter space, so regressions are
	// checked per transport, never across them.
	lastSeq := make(map[int]map[core.Transport]uint32)
	for _, b := range c.Monitor.Backends() {
		b := b
		p := c.Monitor.Probers[b]
		p.OnRecord = func(rec wire.LoadRecord, _ sim.Time) {
			if lastSeq[b] == nil {
				lastSeq[b] = make(map[core.Transport]uint32)
			}
			tr := p.LastTransport
			if last, ok := lastSeq[b][tr]; ok && rec.Seq < last {
				pt.SeqViolations++
			}
			lastSeq[b][tr] = rec.Seq
		}
	}

	warm := 400 * sim.Millisecond
	dur := 2 * sim.Second
	if o.Quick {
		dur = 1500 * sim.Millisecond
	}
	threshold := 0.05
	if knobs != nil {
		threshold = knobs.WithDefaults(hybridPoll).Threshold
	} else if o.PushThreshold > 0 {
		threshold = o.PushThreshold
	}

	// The staleness audit: every T, compare each back-end's cached
	// record against ground truth (the paper's §5.1.3 kernel-module
	// trick: a zero-cost direct snapshot). The effective staleness of a
	// cache is how long it has been wrong: min(age, time since the
	// cached index last matched truth). A decayed poll period on a
	// quiet back-end keeps an OLD record that is still RIGHT — old but
	// accurate is not stale.
	lastAccurate := make(map[int]sim.Time)
	var effMax, ageMax sim.Time
	c.Eng.RunUntil(warm)
	for _, b := range c.Monitor.Backends() {
		lastAccurate[b] = warm
	}
	reads0 := c.FNIC.RDMAReads
	audit := c.Eng.NewTicker(hybridPoll, func() {
		now := c.Eng.Now()
		for _, b := range c.Monitor.Backends() {
			truth := core.RecordFromSnapshot(c.Backends[b-1].K.Snapshot(), 0)
			cached, at, ok := c.Monitor.Latest(b)
			if !ok {
				pt.NoRecord++
				continue
			}
			if core.LoadDelta(truth, cached) <= threshold {
				lastAccurate[b] = now
			}
			eff := now - at
			if wrong := now - lastAccurate[b]; wrong < eff {
				eff = wrong
			}
			if eff > effMax {
				effMax = eff
			}
			if age := now - at; age > ageMax {
				ageMax = age
			}
		}
	})
	c.Eng.RunUntil(warm + dur)
	audit.Stop()

	pt.ProbeWRs = c.FNIC.RDMAReads - reads0
	pt.EffStaleMaxT = float64(effMax) / float64(hybridPoll)
	pt.AgeMaxT = float64(ageMax) / float64(hybridPoll)
	for _, p := range c.Monitor.Probers {
		pt.Errors += p.Errors
	}
	for _, push := range c.Pushers {
		if push != nil {
			pt.PushWRs += push.Pushes
			pt.Errors += int(push.Errors)
		}
	}
	pt.Decayed = c.Monitor.Decayed
	pt.StalePushes = c.Monitor.StalePushes
	if c.Monitor.Sink != nil {
		pt.Torn = c.Monitor.Sink.Torn
	}
	return pt
}

// Result renders the comparison and the asserted contract.
func (d *HybridData) Result() *Result {
	r := &Result{
		ID:    "hybrid",
		Title: "Hybrid push/pull vs all-pull: probe WRs at equal staleness bound (10ms sweep, RDMA-Sync)",
		Columns: []string{"mode", "backends", "volatile", "probe WRs", "push WRs",
			"decayed", "eff-stale max(T)", "age max(T)", "errors"},
		Failed: d.Failed,
	}
	for _, p := range d.Points {
		r.Rows = append(r.Rows, []string{
			p.Mode,
			fmt.Sprintf("%d", p.Backends),
			fmt.Sprintf("%d", p.Volatile),
			fmt.Sprintf("%d", p.ProbeWRs),
			fmt.Sprintf("%d", p.PushWRs),
			fmt.Sprintf("%d", p.Decayed),
			f1(p.EffStaleMaxT),
			f1(p.AgeMaxT),
			fmt.Sprintf("%d", p.Errors),
		})
	}
	pull, hyb := d.Points[0], d.Points[1]
	totalPull := pull.ProbeWRs + pull.PushWRs
	totalHyb := hyb.ProbeWRs + hyb.PushWRs
	totalRatio := 0.0
	if totalHyb > 0 {
		totalRatio = float64(totalPull) / float64(totalHyb)
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("probe-WR reduction: %.1fx (criterion: >= %dx at the same %dT effective-staleness bound)",
			d.WRRatio, hybridWRRatio, hybridStaleSLO),
		fmt.Sprintf("total one-sided WR reduction including delta pushes: %.1fx", totalRatio),
		"effective staleness counts time-while-wrong: an old record whose load index still matches ground truth is accurate, not stale")
	r.Notes = append(r.Notes, d.Notes...)
	return r
}
