package experiments

import (
	"rdmamon/internal/core"
	"rdmamon/internal/httpsim"
	"rdmamon/internal/metrics"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
)

func init() {
	register("fig5a", "accuracy of reported thread count under load (§5.1.3)",
		func(o Options) *Result { return Fig5(o).ResultThreads() })
	register("fig5b", "accuracy of reported CPU load under load (§5.1.3)",
		func(o Options) *Result { return Fig5(o).ResultCPU() })
}

// Fig5Data holds the Figure 5 deviations: |reported - actual| for the
// runnable-thread count (5a) and the CPU utilisation (5b), per scheme.
type Fig5Data struct {
	Threads map[core.Scheme]*metrics.Deviation
	CPU     map[core.Scheme]*metrics.Deviation // percent points
}

// Fig5 reproduces §5.1.3: each scheme monitors a back-end whose load
// ramps up; reported values are compared against a kernel-module truth
// sampled at the instant each report arrives.
func Fig5(o Options) *Fig5Data {
	schemes := core.FourSchemes()
	d := &Fig5Data{
		Threads: make(map[core.Scheme]*metrics.Deviation),
		CPU:     make(map[core.Scheme]*metrics.Deviation),
	}
	for _, s := range schemes {
		d.Threads[s] = &metrics.Deviation{}
		d.CPU[s] = &metrics.Deviation{}
	}
	forEach(o, len(schemes), func(i int) {
		fig5Point(o, schemes[i], d.Threads[schemes[i]], d.CPU[schemes[i]])
	})
	return d
}

func fig5Point(o Options, s core.Scheme, devT, devC *metrics.Deviation) {
	eng := sim.NewEngine(o.seed() + int64(s))
	fab := simnet.NewFabric(eng, simnet.Defaults())
	front := simos.NewNode(eng, 0, simos.NodeDefaults())
	fnic := fab.Attach(front)
	backend := simos.NewNode(eng, 1, simos.NodeDefaults())
	bnic := fab.Attach(backend)

	dur := 10 * sim.Second
	if o.Quick {
		dur = 3 * sim.Second
	}

	// Ramping client load, as in the paper ("we fired client requests
	// to be processed at the back-end server"): requests arrive over
	// the network in growing bursts, wake worker processes (which then
	// compete with the monitoring process for CPU) and move both
	// nr_running and utilisation around.
	httpsim.StartServer(backend, bnic, httpsim.ServerConfig{Workers: 12})
	fab.RegisterExternal(-1, func(simos.Message) {})
	var reqID uint64
	eng.NewTicker(25*sim.Millisecond, func() {
		frac := float64(eng.Now()) / float64(dur)
		maxBatch := 1 + int(frac*10)
		n := eng.Rand().Intn(maxBatch + 1)
		for j := 0; j < n; j++ {
			reqID++
			req := httpsim.Request{
				ID:     reqID,
				Class:  "load",
				CPU:    sim.Time(eng.Rand().Intn(12)+3) * sim.Millisecond,
				Size:   300,
				Resp:   2 << 10,
				Client: -1,
			}
			fab.Inject(-1, 1, httpsim.ServerPort, req.Size, req)
		}
	})

	agent := core.StartAgent(backend, bnic, core.AgentConfig{Scheme: s})
	p := core.StartProber(front, fnic, agent, core.DefaultInterval)
	p.OnRecord = func(rec wire.LoadRecord, at sim.Time) {
		truth := backend.K.Snapshot()
		devT.Observe(float64(rec.NrRunning), float64(truth.NrRunning))
		devC.Observe(float64(rec.UtilMean())/10, float64(truth.UtilMean())/10) // percent
	}
	eng.RunUntil(dur)
}

// ResultThreads renders Figure 5a.
func (d *Fig5Data) ResultThreads() *Result {
	r := &Result{
		ID:      "fig5a",
		Title:   "Deviation of reported runnable-thread count (|reported-actual|)",
		Columns: []string{"scheme", "mean", "p95", "max", "samples"},
	}
	for _, s := range core.FourSchemes() {
		dev := d.Threads[s]
		r.Rows = append(r.Rows, []string{
			s.String(), f2(dev.MeanAbs()), f2(dev.P95Abs()), f2(dev.MaxAbs()),
			f1(float64(dev.Count())),
		})
	}
	r.Notes = append(r.Notes,
		"expected shape: RDMA-Sync ~0 deviation; async schemes deviate; sockets worst under load (paper Fig 5a)")
	return r
}

// ResultCPU renders Figure 5b (deviations in CPU-percent points).
func (d *Fig5Data) ResultCPU() *Result {
	r := &Result{
		ID:      "fig5b",
		Title:   "Deviation of reported CPU load (percent points)",
		Columns: []string{"scheme", "mean", "p95", "max", "samples"},
	}
	for _, s := range core.FourSchemes() {
		dev := d.CPU[s]
		r.Rows = append(r.Rows, []string{
			s.String(), f2(dev.MeanAbs()), f2(dev.P95Abs()), f2(dev.MaxAbs()),
			f1(float64(dev.Count())),
		})
	}
	r.Notes = append(r.Notes,
		"expected shape: RDMA-Sync near zero; CPU load fluctuates faster than thread count, so async deviations are larger (paper Fig 5b)")
	return r
}
