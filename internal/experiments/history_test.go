package experiments

import "testing"

// TestHistoryQuickContract runs the quick history-ring comparison and
// asserts the tentpole contracts at its reduced fleet — the same
// criteria the full 256-back-end rmbench run enforces: one ring read
// replaces ~K point probes at equal sample coverage, and trend-aware
// dispatch lands its picks on lower peak ground-truth load than the
// level-only policy over the same ramping workload.
func TestHistoryQuickContract(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	d := History(Options{Quick: true})
	if d.Failed {
		t.Fatalf("quick history run reported violations:\n%v", d.Notes)
	}
	if d.WRRatio < histWRRatio {
		t.Fatalf("probe-WR reduction %.1fx, want >= %.1fx", d.WRRatio, histWRRatio)
	}
	ring := d.Coverage[1]
	if ring.SamplesPerWR < histSamplesPerWR {
		t.Fatalf("ring reads amortize %.1f samples/WR, want >= %.1f",
			ring.SamplesPerWR, histSamplesPerWR)
	}
	level, trend := d.Dispatch[0], d.Dispatch[1]
	if trend.PeakIdx > level.PeakIdx-histPeakMargin {
		t.Fatalf("trend peak landing index %.3f vs level %.3f, want lower by >= %.2f",
			trend.PeakIdx, level.PeakIdx, histPeakMargin)
	}
	if trend.TrendPicks == 0 || level.TrendPicks != 0 {
		t.Fatalf("trend picks: trend run %d (want > 0), level run %d (want 0)",
			trend.TrendPicks, level.TrendPicks)
	}
	if trend.Digest != d.ReplayB {
		t.Fatalf("seeded replay diverged: %016x vs %016x", trend.Digest, d.ReplayB)
	}
}

// TestHistoryDeterministic: the whole experiment — flappers, ring
// sampling, seqlock retries, trend-aware picks, the landing audit —
// must be bit-identical across two runs with the same seed.
func TestHistoryDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	diffResults(t, "history", runOnce(t, "history"), runOnce(t, "history"))
}
