package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestAfterFromWithinEvent(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	e.Schedule(5, func() {
		e.After(10, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 1 || times[0] != 15 {
		t.Fatalf("nested After = %v, want [15]", times)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	if !ev.Pending() {
		t.Fatal("event should be pending")
	}
	if !e.Cancel(ev) {
		t.Fatal("Cancel should report true for pending event")
	}
	if e.Cancel(ev) {
		t.Fatal("double Cancel should report false")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if ev.Pending() {
		t.Fatal("cancelled event still pending")
	}
}

func TestCancelNil(t *testing.T) {
	e := NewEngine(1)
	if e.Cancel(nil) {
		t.Fatal("Cancel(nil) should be false")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine(1)
	var got []int
	evs := make([]*Event, 20)
	for i := 0; i < 20; i++ {
		i := i
		evs[i] = e.Schedule(Time(i*10), func() { got = append(got, i) })
	}
	// Cancel a scattering of events and verify the rest fire in order.
	for _, i := range []int{3, 7, 11, 19, 0} {
		e.Cancel(evs[i])
	}
	e.Run()
	prev := -1
	for _, v := range got {
		if v <= prev {
			t.Fatalf("out of order after cancels: %v", got)
		}
		prev = v
	}
	if len(got) != 15 {
		t.Fatalf("got %d events, want 15", len(got))
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	e.Schedule(50, func() {})
}

func TestScheduleNilFuncPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling nil func should panic")
		}
	}()
	e.Schedule(10, nil)
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("Now = %v, want 25", e.Now())
	}
	e.RunUntil(30) // boundary inclusive
	if len(fired) != 3 {
		t.Fatalf("fired %v, want 3 events after boundary", fired)
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all 4", fired)
	}
}

func TestRunFor(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.NewTicker(10, func() { n++ })
	e.RunFor(100)
	if n != 10 {
		t.Fatalf("ticks = %d, want 10", n)
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tk *Ticker
	tk = e.NewTicker(10, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if n != 3 {
		t.Fatalf("ticks after stop = %d, want 3", n)
	}
	tk.Stop() // idempotent
}

func TestTickerBadPeriodPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero ticker period should panic")
		}
	}()
	e.NewTicker(0, func() {})
}

func TestNegativeAfterClamps(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(50, func() {})
	e.RunUntil(50)
	fired := false
	e.After(-10, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("After with negative delay should fire immediately")
	}
	if e.Now() != 50 {
		t.Fatalf("Now = %v, want 50", e.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		e := NewEngine(seed)
		var trace []int64
		var rec func()
		rec = func() {
			trace = append(trace, int64(e.Now()))
			if len(trace) < 200 {
				e.After(Time(e.Rand().Intn(1000)+1), rec)
			}
		}
		e.Schedule(0, rec)
		e.Run()
		return trace
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2us"},
		{3 * Millisecond, "3ms"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if (1500 * Millisecond).Seconds() != 1.5 {
		t.Error("Seconds conversion wrong")
	}
	if (3 * Millisecond).Millis() != 3 {
		t.Error("Millis conversion wrong")
	}
	if (7 * Microsecond).Micros() != 7 {
		t.Error("Micros conversion wrong")
	}
}

// Property: for any batch of (delay, id) pairs, events fire in
// nondecreasing time order and every non-cancelled event fires exactly
// once.
func TestQuickHeapProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(7)
		fired := make([]bool, len(delays))
		var last Time = -1
		ok := true
		for i, d := range delays {
			i, d := i, d
			e.Schedule(Time(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
				if fired[i] {
					ok = false
				}
				fired[i] = true
			})
		}
		e.Run()
		for _, f := range fired {
			if !f {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000), func() {})
		if e.Len() > 10000 {
			e.RunFor(1000)
		}
	}
	e.Run()
}

func TestEventAtAndLen(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(25, func() {})
	if ev.At() != 25 {
		t.Fatalf("At = %v", ev.At())
	}
	if e.Len() != 1 {
		t.Fatalf("Len = %d", e.Len())
	}
	e.Run()
	if e.Len() != 0 {
		t.Fatal("queue should drain")
	}
	if e.Processed != 1 {
		t.Fatalf("Processed = %d", e.Processed)
	}
}
