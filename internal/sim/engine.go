// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in the order they were
// scheduled, so a run with a fixed seed is bit-for-bit reproducible.
// All other simulation packages (simos, simnet, ...) are built on top
// of this engine and inherit its determinism.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since the start of
// the simulation. It is deliberately distinct from time.Time and
// time.Duration: simulated time never touches the wall clock.
type Time int64

// Convenient duration units expressed as Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders a Time using the most natural unit.
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3gus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.4gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6gs", float64(t)/float64(Second))
	}
}

// Seconds returns the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns the time as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros returns the time as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Event is a scheduled callback. The zero value is not useful; events
// are created through Engine.Schedule and Engine.After.
type Event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // position in the heap, -1 when not queued
}

// At returns the virtual time the event is (or was) scheduled for.
func (e *Event) At() Time { return e.at }

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe
// for concurrent use; run one engine per goroutine.
type Engine struct {
	now   Time
	seq   uint64
	queue eventHeap
	rng   *rand.Rand

	// Processed counts events executed, for diagnostics and tests.
	Processed uint64
}

// NewEngine returns an engine with its clock at zero and a random
// number stream derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Len returns the number of queued events.
func (e *Engine) Len() int { return len(e.queue) }

// Schedule queues fn to run at absolute time at. Scheduling in the past
// (before Now) panics: it would silently reorder causality.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil func")
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, fn: fn, index: -1}
	heap.Push(&e.queue, ev)
	return ev
}

// After queues fn to run d after the current time. Negative d is
// clamped to zero.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel removes a pending event. It reports whether the event was
// still pending. Cancelling a fired or already-cancelled event is a
// harmless no-op.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	ev.fn = nil
	return true
}

// Step executes the next event, advancing the clock to its timestamp.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	fn := ev.fn
	ev.fn = nil
	e.Processed++
	fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the
// clock to exactly t. Events scheduled at t fire; later events remain
// queued.
func (e *Engine) RunUntil(t Time) {
	for len(e.queue) > 0 && e.queue[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor executes events for a span d of virtual time from Now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// Ticker invokes fn every period until Stop is called. The first tick
// fires one period from now.
type Ticker struct {
	eng     *Engine
	period  Time
	fn      func()
	ev      *Event
	stopped bool
}

// NewTicker creates and starts a ticker. period must be positive.
func (e *Engine) NewTicker(period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{eng: e, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.eng.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future ticks. Safe to call multiple times.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.eng.Cancel(t.ev)
}
