package cluster

import (
	"testing"

	"rdmamon/internal/core"
	"rdmamon/internal/faults"
	"rdmamon/internal/loadbalance"
	"rdmamon/internal/sim"
)

// TestCrashQuarantineAndReadmit is the acceptance scenario: under a
// two-node crash/restart plan the monitor must quarantine the dead
// back-ends within 3 probe periods, the weighted dispatcher must send
// them zero traffic while quarantined, and after the restart they must
// pass probation and rejoin the dispatch set.
func TestCrashQuarantineAndReadmit(t *testing.T) {
	for _, scheme := range []core.Scheme{core.SocketSync, core.RDMASync} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			poll := 50 * sim.Millisecond
			c := New(Config{
				Backends:     4,
				Scheme:       scheme,
				Poll:         poll,
				Seed:         11,
				ProbeTimeout: poll,
			})
			crashAt := 2 * sim.Second
			restartAt := 6 * sim.Second
			in := c.ApplyFaults(faults.TwoNodeCrashPlan(11, 2, 3, crashAt, restartAt))
			pool := c.StartRUBiS(24, 100*sim.Millisecond, 5)

			// Warm up: everyone healthy and receiving probes.
			c.Run(1 * sim.Second)
			for _, b := range c.BackendIDs() {
				if h := c.Monitor.Health(b); h != core.Healthy {
					t.Fatalf("backend %d pre-crash health = %v", b, h)
				}
			}

			// Crash + 3 probe cycles. A cycle with two dead back-ends
			// stretches to poll + 2*ProbeTimeout (each timed-out probe
			// holds the sequential sweep for its full deadline), plus
			// one cycle of slack for the sweep in flight at crash time.
			cycle := poll + 2*poll
			c.Run(crashAt - c.Eng.Now() + 3*cycle + cycle)
			for _, b := range []int{2, 3} {
				if h := c.Monitor.Health(b); h != core.Quarantined {
					t.Fatalf("backend %d health = %v within 3 probe periods of crash", b, h)
				}
			}
			if in.CrashEvents != 2 {
				t.Fatalf("CrashEvents = %d", in.CrashEvents)
			}

			// While quarantined: zero dispatched traffic to dead nodes.
			wp := c.Policy.(*loadbalance.WeightedProportional)
			before2, before3 := wp.Picks[2], wp.Picks[3]
			c.Run(restartAt - c.Eng.Now() - 100*sim.Millisecond)
			if wp.Picks[2] != before2 || wp.Picks[3] != before3 {
				t.Fatalf("quarantined back-ends picked: 2: %d->%d, 3: %d->%d",
					before2, wp.Picks[2], before3, wp.Picks[3])
			}
			if wp.ExcludedPicks == 0 {
				t.Fatal("ExcludedPicks stayed zero while two back-ends were quarantined")
			}

			// After restart + probation: healthy and dispatched to again.
			c.Run(restartAt - c.Eng.Now() + 10*poll)
			for _, b := range []int{2, 3} {
				if h := c.Monitor.Health(b); h != core.Healthy {
					t.Fatalf("backend %d health = %v after restart+probation", b, h)
				}
			}
			after2, after3 := wp.Picks[2], wp.Picks[3]
			c.Run(2 * sim.Second)
			if wp.Picks[2] == after2 && wp.Picks[3] == after3 {
				t.Fatal("re-admitted back-ends never dispatched to")
			}
			if pool.Completed == 0 {
				t.Fatal("no requests completed")
			}
			// Served counts stay consistent even across server respawns.
			if got := c.TotalServed(); got == 0 {
				t.Fatalf("TotalServed = %d", got)
			}
		})
	}
}

// TestLinkFlapDegradesNotDies: a lossy window on the front-end's links
// raises probe errors but the system keeps serving and every back-end
// returns to Healthy after the window.
func TestLinkFlapDegradesNotDies(t *testing.T) {
	poll := 50 * sim.Millisecond
	c := New(Config{
		Backends:     4,
		Scheme:       core.SocketSync,
		Poll:         poll,
		Seed:         13,
		ProbeTimeout: poll,
	})
	c.ApplyFaults(faults.Plan{
		Seed: 13,
		Links: []faults.LinkFault{{
			From: faults.Any, To: faults.Any,
			Start: 1 * sim.Second, End: 3 * sim.Second,
			Drop: 0.4,
		}},
	})
	pool := c.StartRUBiS(16, 100*sim.Millisecond, 7)
	c.Run(6 * sim.Second)

	errs := 0
	for _, p := range c.Monitor.Probers {
		errs += p.Errors
	}
	if errs == 0 {
		t.Fatal("no probe errors under a 40% loss window")
	}
	for _, b := range c.BackendIDs() {
		if h := c.Monitor.Health(b); h != core.Healthy {
			t.Fatalf("backend %d health = %v after the flap cleared", b, h)
		}
	}
	if pool.Completed == 0 {
		t.Fatal("no requests completed under link flap")
	}
}

// TestMRInvalidationRecovers: revoking the agent's memory region makes
// RDMA probes fail until the agent re-pins, then probing resumes with
// the fresh key.
func TestMRInvalidationRecovers(t *testing.T) {
	poll := 50 * sim.Millisecond
	c := New(Config{
		Backends:     2,
		Scheme:       core.RDMASync,
		Poll:         poll,
		Seed:         17,
		ProbeTimeout: poll,
		MRRepin:      200 * sim.Millisecond,
	})
	c.ApplyFaults(faults.Plan{
		Seed:            17,
		MRInvalidations: []faults.MRInvalidation{{Node: 1, At: 1 * sim.Second}},
	})
	// Past the invalidation (t=1s) and the 200ms re-pin, with slack
	// for probes already in flight when the new key appeared.
	c.Run(1*sim.Second + 500*sim.Millisecond)
	p := c.Monitor.Probers[1]
	if p.Errors == 0 {
		t.Fatal("no probe errors after MR invalidation")
	}
	errsAtRepin := p.Errors
	c.Run(2 * sim.Second)
	if p.Errors != errsAtRepin {
		t.Fatalf("probe errors kept rising after re-pin: %d -> %d", errsAtRepin, p.Errors)
	}
	if h := c.Monitor.Health(1); h != core.Healthy {
		t.Fatalf("backend 1 health = %v after re-pin", h)
	}
}
