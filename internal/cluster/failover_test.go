package cluster

import (
	"testing"

	"rdmamon/internal/core"
	"rdmamon/internal/faults"
	"rdmamon/internal/loadbalance"
	"rdmamon/internal/sim"
)

// TestMRInvalidationFailoverAndFailBack is the issue's acceptance
// scenario for the transport breaker: under an MR-invalidation fault an
// RDMA-monitored back-end must degrade to socket probing (staying
// monitored within the staleness budget and still receiving dispatched
// traffic, at a penalty), then fail back to RDMA and full health after
// the agent re-pins its region.
func TestMRInvalidationFailoverAndFailBack(t *testing.T) {
	poll := 50 * sim.Millisecond
	repin := 2 * sim.Second
	victim := 2
	c := New(Config{
		Backends: 4,
		Scheme:   core.RDMASync,
		Poll:     poll,
		Seed:     23,
		Policy:   PolicyWebSphere,
		MRRepin:  repin,
		Failover: &core.FailoverConfig{},
	})
	invalidateAt := 2 * sim.Second
	c.ApplyFaults(faults.Plan{
		MRInvalidations: []faults.MRInvalidation{{Node: victim, At: invalidateAt}},
	})
	c.StartRUBiS(24, 100*sim.Millisecond, 5)

	// Warm up: all healthy over RDMA, breaker armed but silent.
	c.Run(1 * sim.Second)
	fo := c.Monitor.Failover(victim)
	if fo == nil {
		t.Fatal("Config.Failover did not arm the monitor's breakers")
	}
	if fo.Tripped() || c.Monitor.Health(victim) != core.Healthy {
		t.Fatalf("pre-fault: tripped=%v health=%v", fo.Tripped(), c.Monitor.Health(victim))
	}

	// Invalidation + a few sweeps: the breaker must have tripped, the
	// victim must be Degraded (not Suspect or Quarantined — the server
	// itself is fine), and its record must still be fresh via the socket
	// standby: the staleness budget is ~one sweep, not TripAfter sweeps.
	c.Run(invalidateAt - c.Eng.Now() + 6*poll)
	if !fo.Tripped() {
		t.Fatal("breaker not tripped after sustained MR invalidation")
	}
	if h := c.Monitor.Health(victim); h != core.Degraded {
		t.Fatalf("victim health = %v during outage, want degraded", h)
	}
	if _, at, ok := c.Monitor.Latest(victim); !ok || c.Eng.Now()-at > 4*poll {
		t.Fatalf("victim record stale by %v during outage", c.Eng.Now()-at)
	}

	// Degraded stays in the dispatch set, discounted: traffic continues.
	wp := c.Policy.(*loadbalance.WeightedProportional)
	before := wp.Picks[victim]
	c.Run(1 * sim.Second)
	if wp.Picks[victim] == before {
		t.Fatal("degraded back-end received zero traffic")
	}
	if wp.DegradedPicks == 0 {
		t.Fatal("DegradedPicks stayed zero while a back-end was degraded")
	}

	// After the re-pin, the low-rate re-arm probes must fail the breaker
	// back and the health machine must return to Healthy over RDMA.
	// Re-arm runs every 4th fallback cycle and needs 2 consecutive
	// successes, so give it a couple of seconds of quiet time.
	c.Run(invalidateAt + repin - c.Eng.Now() + 3*sim.Second)
	if fo.Tripped() {
		t.Fatal("breaker still tripped long after MR re-pin")
	}
	if fo.Trips != 1 || fo.FailBacks != 1 {
		t.Fatalf("Trips/FailBacks = %d/%d, want 1/1", fo.Trips, fo.FailBacks)
	}
	if h := c.Monitor.Health(victim); h != core.Healthy {
		t.Fatalf("victim health = %v after fail-back, want healthy", h)
	}
	p := c.Monitor.Probers[victim]
	if p.LastTransport != core.TransportRDMA {
		t.Fatalf("victim probed via %v after fail-back, want rdma", p.LastTransport)
	}
	if p.Fallbacks == 0 || p.ReArms == 0 {
		t.Fatalf("Fallbacks/ReArms = %d/%d, want both non-zero", p.Fallbacks, p.ReArms)
	}

	// The untouched back-ends never left RDMA.
	for _, b := range c.BackendIDs() {
		if b == victim {
			continue
		}
		if c.Monitor.Probers[b].Fallbacks != 0 {
			t.Fatalf("backend %d fell back %d times without a fault", b, c.Monitor.Probers[b].Fallbacks)
		}
	}
}

// TestFailoverIgnoredOnSocketSchemes: arming failover under a socket
// scheme is a documented no-op — there is no faster path to fall back
// from, and probing must behave exactly as unarmed.
func TestFailoverIgnoredOnSocketSchemes(t *testing.T) {
	c := New(Config{
		Backends: 2,
		Scheme:   core.SocketSync,
		Poll:     50 * sim.Millisecond,
		Seed:     3,
		Failover: &core.FailoverConfig{},
	})
	c.Run(1 * sim.Second)
	for _, b := range c.BackendIDs() {
		if c.Monitor.Failover(b) != nil {
			t.Fatalf("backend %d has a breaker under a socket scheme", b)
		}
		if c.Monitor.Health(b) != core.Healthy {
			t.Fatalf("backend %d health = %v", b, c.Monitor.Health(b))
		}
	}
}
