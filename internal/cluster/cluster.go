// Package cluster wires the full system of the paper's evaluation: a
// front-end node running the monitoring probes and the request
// dispatcher, and N back-end nodes each running a web-server worker
// pool and the back-end half of the chosen monitoring scheme.
package cluster

import (
	"fmt"
	"math/rand"

	"rdmamon/internal/admission"
	"rdmamon/internal/connpool"
	"rdmamon/internal/core"
	"rdmamon/internal/faults"
	"rdmamon/internal/httpsim"
	"rdmamon/internal/loadbalance"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
	"rdmamon/internal/workload"
)

// PolicyName selects the dispatcher policy.
type PolicyName string

// Available dispatcher policies.
const (
	// PolicyWebSphere distributes proportionally to monitored-load
	// weights (IBM WebSphere / Network Dispatcher style, the paper's
	// algorithm). Default.
	PolicyWebSphere PolicyName = "websphere"
	// PolicyLeastLoad sends each request to the backend with the
	// smallest weighted index (strict argmin).
	PolicyLeastLoad  PolicyName = "least-load"
	PolicyRoundRobin PolicyName = "round-robin"
	PolicyRandom     PolicyName = "random"
)

// Config describes a cluster to build.
type Config struct {
	Backends int
	Scheme   core.Scheme
	Poll     sim.Time // monitoring poll/refresh interval T
	Workers  int      // web server worker pool per back-end
	Policy   PolicyName
	Seed     int64

	Node   simos.Config
	Fabric simnet.Config

	// NoServers skips the web-server pool (micro-benchmarks).
	NoServers bool
	// NoMonitor skips agents and probes entirely.
	NoMonitor bool

	// LocalWeight blends the dispatcher's own connection-count signal
	// into the least-load index (see loadbalance.WeightedLeastLoad).
	// Negative disables; zero takes the default of 0.1.
	LocalWeight float64

	// Gamma sharpens the WebSphere policy's load->weight mapping
	// (loadbalance.WeightedProportional). Zero takes that policy's
	// default.
	Gamma float64

	// ProbeTimeout bounds each monitoring probe (see core.Prober). Zero
	// keeps the seed behaviour (no deadline); fault experiments set it
	// so a dead back-end cannot stall the sequential probe cycle.
	ProbeTimeout sim.Time

	// MonitorShards splits the monitoring process into S shard tasks,
	// each sweeping its own slice of back-ends; MonitorBatch caps how
	// many one-sided reads one doorbell batch posts (see
	// core.MonitorConfig). Zero values keep the paper's sequential
	// single-task monitor.
	MonitorShards int
	MonitorBatch  int

	// MRRepin is how long a back-end agent takes to notice an
	// invalidated memory region and re-register it (fault plans with
	// MRInvalidations). Zero takes 100ms.
	MRRepin sim.Time

	// HistoryK publishes a K-slot history ring on every RDMA-scheme
	// agent instead of the single-record region (see
	// core.AgentConfig.HistoryK): one probe read fetches the last K
	// timestamped samples and feeds each prober's trend tracker. Zero
	// keeps single-record regions bit-for-bit; socket schemes ignore it.
	HistoryK int

	// AgentInterval overrides the back-end agents' sample/refresh
	// interval (default Poll). With a history ring this is the window's
	// sample granularity: agents sampling at AgentInterval while the
	// monitor polls at Poll = K x AgentInterval cover the same timeline
	// with 1/K of the probe work requests.
	AgentInterval sim.Time

	// TrendHorizon turns on trend-aware dispatch under PolicyLeastLoad:
	// back-ends are ranked on their load index projected TrendHorizon
	// ahead along the monitor's observed slope, clamped so a stale or
	// wild trend can shift a rank by at most loadbalance.DefaultTrendClamp
	// (see loadbalance.WeightedLeastLoad). Zero keeps level-only
	// ranking. Most useful with HistoryK > 0, which primes slopes from
	// one read; point probes prime them over consecutive sweeps.
	TrendHorizon sim.Time

	// Failover, if non-nil, arms a per-backend transport breaker on the
	// RDMA schemes (see core.Failover): agents additionally serve the
	// socket standby port, and probes fail over to it when the RDMA
	// path breaks, failing back after it recovers. Ignored under the
	// socket schemes, which have nothing to fail over from.
	Failover *core.FailoverConfig

	// Hybrid, if non-nil, turns on the hybrid push/pull scheme on the
	// RDMA schemes (see core.HybridConfig): every back-end runs a
	// change-threshold delta pusher writing into the front-end monitor's
	// aggregation region, and the monitor adapts each back-end's poll
	// period to its change rate. Ignored under the socket schemes.
	Hybrid *core.HybridConfig

	// Pool, if non-nil, routes every monitor's one-sided probes
	// through a connection-lifecycle pool (see internal/connpool):
	// per-probe conn acquisition under explicit budgets (max conns,
	// dials/s, fd budget), epoch-fenced reuse, per-backend dial
	// breakers, quiet-first shedding. nil keeps the seed behaviour —
	// probes route by (target, rkey) with no connection accounting —
	// bit-for-bit. RDMA schemes only.
	Pool *connpool.Config

	// Replicas is the number of front-end replicas. Zero or one keeps
	// the seed topology: a single front-end on node 0, no lease. With
	// R > 1 the front-end is replicated for availability: replica 0
	// stays on node 0, replicas 1..R-1 run on nodes
	// Backends+1..Backends+R-1, and a witness node (Backends+R) hosts
	// the lease regions. Every replica shadow-probes all back-ends —
	// free under the RDMA schemes — but only the lease holder's
	// dispatcher routes; the rest answer NotPrimary.
	Replicas int

	// Lease tunes leased primaryship (defaults derived from Poll; only
	// meaningful with Replicas > 1).
	Lease core.LeaseConfig

	// ActiveActive replaces the single lease with per-shard claim
	// arbitration (Replicas > 1): the back-end space folds onto
	// Claim.Shards claim words on the witness and EVERY replica
	// dispatches concurrently, each only to back-ends whose shard claim
	// it validly holds (see core.Claim). The claim table is the fence —
	// a replica with no claims answers NotPrimary exactly like a
	// deposed lease holder.
	ActiveActive bool

	// Claim tunes claim arbitration (defaults derived from Poll;
	// Shards defaults to Backends; only meaningful with ActiveActive).
	Claim core.ClaimConfig

	// BackendSpecs, when non-empty, makes the back-end fleet
	// heterogeneous: entry i overrides back-end i+1's hardware and
	// agent knobs (zero fields inherit Node / Workers / the cluster
	// agent interval). Shorter-than-Backends slices leave the tail at
	// the defaults. The overrides survive crash/restart fault cycles —
	// a rebooted slow node comes back slow.
	BackendSpecs []BackendSpec
}

// BackendSpec is one back-end's hardware/agent overrides for a
// heterogeneous fleet (see Config.BackendSpecs).
type BackendSpec struct {
	// Template is a provenance label (which fleet template produced
	// this back-end); reports group dispatch shares by it.
	Template string
	// CPUs overrides simos.Config.NumCPU for this node.
	CPUs int
	// NICLatency adds extra one-way fabric latency to every operation
	// touching this node (simnet.Fabric.SetNodeLatency).
	NICLatency sim.Time
	// AgentInterval overrides the node's monitoring-agent refresh
	// interval (Config.AgentInterval, then Poll).
	AgentInterval sim.Time
	// Workers overrides the web-server worker pool size.
	Workers int
}

// Replica is one front-end instance: its own monitor (warm load view),
// policy, dispatcher (fenced by the lease) and lease manager.
type Replica struct {
	Index int // 0-based; lease holder ID is Index+1
	Node  *simos.Node
	NIC   *simnet.NIC

	Monitor    *core.Monitor
	Policy     loadbalance.Policy
	Dispatcher *httpsim.Dispatcher
	LeaseMgr   *core.LeaseManager
	ClaimMgr   *core.ClaimManager

	down bool
}

// Down reports whether the replica is currently crashed.
func (r *Replica) Down() bool { return r.down }

// Cluster is a fully wired simulated deployment.
type Cluster struct {
	Cfg Config

	Eng  *sim.Engine
	Fab  *simnet.Fabric
	Rand *rand.Rand

	Front *simos.Node
	FNIC  *simnet.NIC

	Backends []*simos.Node
	BNICs    []*simnet.NIC
	Servers  []*httpsim.Server

	Agents     []*core.Agent
	Monitor    *core.Monitor
	Policy     loadbalance.Policy
	Dispatcher *httpsim.Dispatcher

	// Pushers are the back-end delta pushers of the hybrid scheme
	// (Cfg.Hybrid on an RDMA scheme), indexed like Backends. They write
	// into the primary front-end's aggregation region, resolving the
	// slot key per push so monitor replacement and slot re-pinning are
	// survived transparently.
	Pushers []*core.DeltaPusher

	// Replicated front-end (Cfg.Replicas > 1). FrontEnds[0] aliases
	// Front/Monitor/Policy/Dispatcher; Witness hosts the lease vault —
	// or, under ActiveActive, the claim vault.
	FrontEnds  []*Replica
	Witness    *simos.Node
	WitnessNIC *simnet.NIC
	Vault      *core.LeaseVault
	ClaimVault *core.ClaimVault

	// OnReplicaRestart, if set, runs after a crashed front-end replica
	// is rebooted with fresh monitor/dispatcher/lease instances, so
	// observers (experiment checkers, exporters) can re-install their
	// hooks on the new objects.
	OnReplicaRestart func(r *Replica)

	extCursor     int
	retiredServed uint64 // served counts of servers replaced after a crash
}

// New builds a cluster. Node 0 is the front-end; back-ends are 1..N.
func New(cfg Config) *Cluster {
	if cfg.Backends <= 0 {
		cfg.Backends = 8
	}
	if cfg.Poll <= 0 {
		cfg.Poll = core.DefaultInterval
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyWebSphere
	}
	if cfg.Failover != nil && cfg.ProbeTimeout <= 0 {
		// Socket fallback probing needs a deadline — without one a probe
		// against a crashed report thread would stall the cycle forever.
		cfg.ProbeTimeout = cfg.Poll
	}
	if cfg.Hybrid != nil {
		// Normalise once so the monitor's controller and every pusher
		// share the same resolved thresholds and periods.
		h := cfg.Hybrid.WithDefaults(cfg.Poll)
		cfg.Hybrid = &h
	}
	if cfg.ActiveActive {
		// One claim shard per back-end unless told otherwise, resolved
		// once so vault, managers and fences agree on the table size.
		if cfg.Claim.Shards <= 0 {
			cfg.Claim.Shards = cfg.Backends
		}
		cfg.Claim = cfg.Claim.WithDefaults(cfg.Poll)
	}
	c := &Cluster{Cfg: cfg, extCursor: simnet.ExternalBase}
	c.Eng = sim.NewEngine(cfg.Seed)
	c.Rand = rand.New(rand.NewSource(cfg.Seed + 1))
	c.Fab = simnet.NewFabric(c.Eng, cfg.Fabric)

	c.Front = simos.NewNode(c.Eng, 0, cfg.Node)
	c.FNIC = c.Fab.Attach(c.Front)

	for i := 1; i <= cfg.Backends; i++ {
		n := simos.NewNode(c.Eng, i, c.backendNodeCfg(i-1))
		nic := c.Fab.Attach(n)
		if lat := c.spec(i - 1).NICLatency; lat > 0 {
			c.Fab.SetNodeLatency(i, lat)
		}
		c.Backends = append(c.Backends, n)
		c.BNICs = append(c.BNICs, nic)
		if !cfg.NoServers {
			srv := httpsim.StartServer(n, nic, c.serverConfig(i-1))
			c.Servers = append(c.Servers, srv)
		}
		if !cfg.NoMonitor {
			c.Agents = append(c.Agents, core.StartAgent(n, nic, c.agentConfig(i-1)))
		}
	}
	if !cfg.NoMonitor {
		c.Monitor = core.StartMonitorCfg(c.Front, c.FNIC, c.Agents, cfg.Poll, c.monitorConfig())
		c.Monitor.SetProbeTimeout(cfg.ProbeTimeout)
		if cfg.Failover != nil && cfg.Scheme.UsesRDMA() {
			c.Monitor.ArmFailover(*cfg.Failover)
		}
		if c.Monitor.Sink != nil {
			c.Pushers = make([]*core.DeltaPusher, cfg.Backends)
			for i := range c.Backends {
				c.startPusher(i)
			}
		}
	}
	c.Policy = c.buildPolicy()
	if !cfg.NoServers {
		c.Dispatcher = c.wireDispatcher(c.Front, c.FNIC, c.Policy)
	}
	if cfg.Replicas > 1 {
		c.buildHA()
	}
	return c
}

// startPusher launches the hybrid delta pusher on back-end index i.
// The slot-key closure resolves through the *current* primary monitor
// on every push, so a replaced monitor or re-pinned slot is picked up
// without restarting the pusher.
func (c *Cluster) startPusher(i int) {
	b := i + 1
	c.Pushers[i] = core.StartDeltaPusher(c.Backends[i], c.BNICs[i], c.Front.ID,
		func() uint32 {
			if c.Monitor == nil || c.Monitor.Sink == nil {
				return 0
			}
			return c.Monitor.Sink.SlotKey(b)
		}, *c.Cfg.Hybrid)
}

// wireDispatcher starts a dispatcher on node and blends its local
// connection-count signal into the policy.
func (c *Cluster) wireDispatcher(node *simos.Node, nic *simnet.NIC, pol loadbalance.Policy) *httpsim.Dispatcher {
	d := httpsim.StartDispatcher(node, nic, pol)
	lw := c.Cfg.LocalWeight
	switch {
	case lw < 0:
		lw = 0
	case lw == 0:
		lw = 0.1
	}
	switch p := pol.(type) {
	case *loadbalance.WeightedLeastLoad:
		p.LocalWeight = lw
		p.LocalFrac = d.LocalFrac
	case *loadbalance.WeightedProportional:
		p.LocalWeight = lw
		p.LocalFrac = d.LocalFrac
	}
	return d
}

// buildHA replicates the front-end: standby replica nodes, the
// witness with its lease vault, and a lease manager per replica
// fencing every dispatcher. Replica 0 wraps the objects New already
// built on node 0.
func (c *Cluster) buildHA() {
	wid := c.Cfg.Backends + c.Cfg.Replicas
	c.Witness = simos.NewNode(c.Eng, wid, c.Cfg.Node)
	c.WitnessNIC = c.Fab.Attach(c.Witness)
	if c.Cfg.ActiveActive {
		c.ClaimVault = core.NewClaimVault(c.WitnessNIC, c.Cfg.Claim.Shards)
	} else {
		c.Vault = core.NewLeaseVault(c.WitnessNIC)
	}

	r0 := &Replica{Index: 0, Node: c.Front, NIC: c.FNIC,
		Monitor: c.Monitor, Policy: c.Policy, Dispatcher: c.Dispatcher}
	c.FrontEnds = []*Replica{r0}
	for i := 1; i < c.Cfg.Replicas; i++ {
		node := simos.NewNode(c.Eng, c.Cfg.Backends+i, c.Cfg.Node)
		r := &Replica{Index: i, Node: node, NIC: c.Fab.Attach(node)}
		c.startReplica(r)
		c.FrontEnds = append(c.FrontEnds, r)
	}
	for _, r := range c.FrontEnds {
		c.armArbitration(r)
	}
}

// armArbitration fences a replica's dispatcher by whichever protocol
// the cluster runs: one lease, or the active-active claim table.
func (c *Cluster) armArbitration(r *Replica) {
	if c.Cfg.ActiveActive {
		c.armClaims(r)
	} else {
		c.armLease(r)
	}
}

// replicaRand is the policy RNG for a replica: replica 0 keeps the
// cluster RNG (so single-front behaviour is untouched), standbys get
// their own deterministic streams.
func (c *Cluster) replicaRand(i int) *rand.Rand {
	if i == 0 {
		return c.Rand
	}
	return rand.New(rand.NewSource(c.Cfg.Seed + 1000 + int64(i)))
}

// startReplica builds a replica's monitor, policy and dispatcher
// (used for standbys at construction and for any replica after a
// restart).
func (c *Cluster) startReplica(r *Replica) {
	if !c.Cfg.NoMonitor {
		r.Monitor = core.StartMonitorCfg(r.Node, r.NIC, c.Agents, c.Cfg.Poll, c.monitorConfig())
		r.Monitor.SetProbeTimeout(c.Cfg.ProbeTimeout)
		if c.Cfg.Failover != nil && c.Cfg.Scheme.UsesRDMA() {
			r.Monitor.ArmFailover(*c.Cfg.Failover)
		}
	}
	r.Policy = c.buildPolicyFor(r.Monitor, c.replicaRand(r.Index))
	if !c.Cfg.NoServers {
		r.Dispatcher = c.wireDispatcher(r.Node, r.NIC, r.Policy)
	}
}

// armLease starts a replica's lease manager and fences its dispatcher
// on lease validity.
func (c *Cluster) armLease(r *Replica) {
	r.LeaseMgr = core.StartLeaseManager(r.Node, r.NIC, c.Witness.ID,
		c.Vault.WordMR.Key(), c.Vault.RecMR.Key(),
		uint16(r.Index+1), c.Cfg.Lease.WithDefaults(c.Cfg.Poll))
	if r.Dispatcher != nil {
		lm := r.LeaseMgr
		eng := c.Eng
		r.Dispatcher.Fence = func() bool { return lm.Lease.Valid(eng.Now()) }
	}
	if r.Monitor != nil {
		// The adaptive poll controller only decays on the lease holder:
		// a standby keeps the fast sweep so its load view is warm the
		// instant it seizes primaryship.
		lm := r.LeaseMgr
		eng := c.Eng
		r.Monitor.LeaseValid = func() bool { return lm.Lease.Valid(eng.Now()) }
	}
}

// ShardOf maps a back-end node ID onto its claim shard.
func (c *Cluster) ShardOf(backend int) int {
	return (backend - 1) % c.Cfg.Claim.Shards
}

// armClaims starts a replica's claim manager and fences its policy
// and dispatcher on per-shard claim validity: the policy's Claimed
// filter steers picks onto held shards, the dispatcher's BackendFence
// is the hard guarantee no request leaves for an unclaimed one.
func (c *Cluster) armClaims(r *Replica) {
	r.ClaimMgr = core.StartClaimManager(r.Node, r.NIC, c.Witness.ID,
		c.ClaimVault.WordKeys(), c.ClaimVault.RecKeys(),
		uint16(r.Index+1), c.Cfg.Replicas, c.Cfg.Claim)
	mgr := r.ClaimMgr
	eng := c.Eng
	claimed := func(b int) bool { return mgr.Valid(c.ShardOf(b), eng.Now()) }
	if r.Dispatcher != nil {
		r.Dispatcher.BackendFence = claimed
	}
	switch p := r.Policy.(type) {
	case *loadbalance.WeightedLeastLoad:
		p.Claimed = claimed
	case *loadbalance.WeightedProportional:
		p.Claimed = claimed
	}
	if r.Monitor != nil {
		// The adaptive poll controller keeps the fast sweep on any
		// replica holding claims — it is dispatching and needs a warm
		// load view; a replica holding nothing may decay like a standby.
		r.Monitor.LeaseValid = func() bool { return mgr.HeldValid(eng.Now()) > 0 }
	}
}

// restartReplica reboots a crashed front-end replica: fresh monitor
// (it re-warms its load view probe by probe), fresh fenced dispatcher,
// fresh lease/claim manager starting with nothing held.
func (c *Cluster) restartReplica(r *Replica) {
	c.startReplica(r)
	c.armArbitration(r)
	r.down = false
	if r.Index == 0 {
		c.Monitor, c.Policy, c.Dispatcher = r.Monitor, r.Policy, r.Dispatcher
	}
	if c.OnReplicaRestart != nil {
		c.OnReplicaRestart(r)
	}
}

// monitors lists every live monitor: the primary plus any standby
// replicas' (deduplicated — FrontEnds[0].Monitor aliases Monitor).
func (c *Cluster) monitors() []*core.Monitor {
	var ms []*core.Monitor
	if c.Monitor != nil {
		ms = append(ms, c.Monitor)
	}
	for _, r := range c.FrontEnds {
		if r.Monitor != nil && r.Monitor != c.Monitor {
			ms = append(ms, r.Monitor)
		}
	}
	return ms
}

// replicaByNode maps a node ID to its front-end replica, if any.
func (c *Cluster) replicaByNode(node int) *Replica {
	for _, r := range c.FrontEnds {
		if r.Node.ID == node {
			return r
		}
	}
	return nil
}

// FrontEndIDs lists the front-end node IDs clients can target.
func (c *Cluster) FrontEndIDs() []int {
	if len(c.FrontEnds) == 0 {
		return []int{c.Front.ID}
	}
	ids := make([]int, len(c.FrontEnds))
	for i, r := range c.FrontEnds {
		ids[i] = r.Node.ID
	}
	return ids
}

// Primary returns the replica currently holding a valid lease, or nil
// (single-front clusters always return nil; check Dispatcher instead).
func (c *Cluster) Primary() *Replica {
	now := c.Eng.Now()
	for _, r := range c.FrontEnds {
		if r.LeaseMgr != nil && r.LeaseMgr.Lease.Valid(now) {
			return r
		}
	}
	return nil
}

// monitorConfig maps the cluster's sharding/batching knobs onto the
// probe engine's config (zero values = the sequential monitor).
func (c *Cluster) monitorConfig() core.MonitorConfig {
	mc := core.MonitorConfig{
		Shards: c.Cfg.MonitorShards,
		Batch:  c.Cfg.MonitorBatch,
		Hybrid: c.Cfg.Hybrid,
		Pool:   c.Cfg.Pool,
	}
	if mc.Pool != nil {
		// Deterministic backoff jitter, derived from the cluster seed
		// the same way tcpverbs' SeedJitter is on the live path.
		mc.PoolSeed = c.Cfg.Seed*31 + 0x9e37
	}
	return mc
}

// spec returns back-end index i's heterogeneity overrides; the zero
// value (homogeneous fleet, or a slice shorter than Backends) leaves
// every knob at the cluster default.
func (c *Cluster) spec(i int) BackendSpec {
	if i >= 0 && i < len(c.Cfg.BackendSpecs) {
		return c.Cfg.BackendSpecs[i]
	}
	return BackendSpec{}
}

// backendNodeCfg is back-end index i's simos node configuration.
func (c *Cluster) backendNodeCfg(i int) simos.Config {
	nc := c.Cfg.Node
	if s := c.spec(i); s.CPUs > 0 {
		nc.NumCPU = s.CPUs
	}
	return nc
}

// serverConfig is back-end index i's web-server configuration, shared
// by New and the restart path so a rebooted slow node comes back with
// its small worker pool, not the fleet default.
func (c *Cluster) serverConfig(i int) httpsim.ServerConfig {
	w := c.Cfg.Workers
	if s := c.spec(i); s.Workers > 0 {
		w = s.Workers
	}
	return httpsim.ServerConfig{Workers: w, MemPerKB: 2048}
}

// agentConfig is back-end index i's agent configuration, shared by New
// and the fault injector's restart path so a rebooted agent comes back
// with the same interval and standby-channel arrangement it died with.
func (c *Cluster) agentConfig(i int) core.AgentConfig {
	interval := c.Cfg.Poll
	if c.Cfg.AgentInterval > 0 {
		interval = c.Cfg.AgentInterval
	}
	if s := c.spec(i); s.AgentInterval > 0 {
		interval = s.AgentInterval
	}
	return core.AgentConfig{
		Scheme:        c.Cfg.Scheme,
		Interval:      interval,
		HistoryK:      c.Cfg.HistoryK,
		StandbySocket: c.Cfg.Failover != nil && c.Cfg.Scheme.UsesRDMA(),
	}
}

func (c *Cluster) buildPolicy() loadbalance.Policy {
	return c.buildPolicyFor(c.Monitor, c.Rand)
}

// buildPolicyFor builds the dispatch policy against a specific
// monitor (each front-end replica routes from its own warm view).
func (c *Cluster) buildPolicyFor(mon *core.Monitor, rng *rand.Rand) loadbalance.Policy {
	ids := c.BackendIDs()
	switch c.Cfg.Policy {
	case PolicyRoundRobin:
		return &loadbalance.RoundRobin{Backends: ids}
	case PolicyRandom:
		return &loadbalance.Random{Backends: ids, Rng: rng}
	case PolicyLeastLoad, PolicyWebSphere:
		var source loadbalance.LoadSource
		var exclude, degraded func(int) bool
		if mon != nil {
			m := mon
			source = func(b int) (wire.LoadRecord, bool) {
				rec, _, ok := m.Latest(b)
				return rec, ok
			}
			// Quarantined back-ends (3 consecutive failed probes) get
			// zero traffic until they pass probation.
			exclude = func(b int) bool { return !m.Health(b).Eligible() }
			if c.Cfg.Failover != nil {
				// Back-ends monitored over the socket standby stay in the
				// dispatch set but carry a small index handicap.
				degraded = func(b int) bool { return m.Health(b) == core.Degraded }
			}
		} else {
			source = func(int) (wire.LoadRecord, bool) { return wire.LoadRecord{}, false }
		}
		if c.Cfg.Policy == PolicyLeastLoad {
			wll := &loadbalance.WeightedLeastLoad{
				Backends: ids,
				Weights:  core.WeightsFor(c.Cfg.Scheme),
				Source:   source,
				Rng:      rng,
				Exclude:  exclude,
				Degraded: degraded,
				Picks:    make(map[int]uint64),
			}
			if c.Cfg.TrendHorizon > 0 && mon != nil {
				m := mon
				wll.Slope = m.Slope
				wll.TrendHorizon = c.Cfg.TrendHorizon
			}
			return wll
		}
		wp := &loadbalance.WeightedProportional{
			Backends:   ids,
			Weights:    core.WeightsFor(c.Cfg.Scheme),
			Source:     source,
			Rng:        rng,
			Gamma:      c.Cfg.Gamma,
			StaleAfter: 250 * sim.Millisecond,
			Exclude:    exclude,
			Degraded:   degraded,
			Picks:      make(map[int]uint64),
		}
		if mon != nil {
			m := mon
			eng := c.Eng
			wp.Aged = func(b int) (wire.LoadRecord, sim.Time, bool) {
				rec, at, ok := m.Latest(b)
				return rec, eng.Now() - at, ok
			}
		}
		return wp
	default:
		panic(fmt.Sprintf("cluster: unknown policy %q", c.Cfg.Policy))
	}
}

// BackendIDs lists the back-end node IDs (1..N).
func (c *Cluster) BackendIDs() []int {
	ids := make([]int, len(c.Backends))
	for i := range c.Backends {
		ids[i] = i + 1
	}
	return ids
}

// Run advances the simulation by d.
func (c *Cluster) Run(d sim.Time) { c.Eng.RunFor(d) }

// allocExt reserves n external client IDs and returns the base.
func (c *Cluster) allocExt(n int) int {
	base := c.extCursor
	c.extCursor -= n
	return base
}

// poolConfig builds the common client-pool config; with a replicated
// front-end clients know every replica and use a short patience so a
// dead primary is abandoned quickly.
func (c *Cluster) poolConfig(clients int, think sim.Time, gen workload.Generator, seed int64) workload.ClientPoolConfig {
	cfg := workload.ClientPoolConfig{
		Clients:   clients,
		ThinkMean: think,
		FrontEnd:  c.Front.ID,
		ExtBase:   c.allocExt(clients),
		Gen:       gen,
		Seed:      seed,
	}
	if len(c.FrontEnds) > 1 {
		cfg.FrontEnds = c.FrontEndIDs()
		cfg.Timeout = 2 * sim.Second
	}
	return cfg
}

// StartRUBiS attaches a closed-loop RUBiS client population.
func (c *Cluster) StartRUBiS(clients int, think sim.Time, seed int64) *workload.ClientPool {
	mix := workload.NewMix(workload.RUBiSMix())
	return workload.StartClients(c.Fab, c.poolConfig(clients, think, workload.MixGenerator(mix), seed))
}

// StartPool attaches a closed-loop client population driving a custom
// request generator (the active-active experiment uses a light,
// dispatch-bound request class no canned mix provides).
func (c *Cluster) StartPool(clients int, think sim.Time, gen workload.Generator, seed int64) *workload.ClientPool {
	return workload.StartClients(c.Fab, c.poolConfig(clients, think, gen, seed))
}

// StartZipf attaches a closed-loop Zipf-trace client population.
func (c *Cluster) StartZipf(z *workload.ZipfTrace, clients int, think sim.Time, seed int64) *workload.ClientPool {
	return workload.StartClients(c.Fab, c.poolConfig(clients, think, workload.ZipfGenerator(z), seed))
}

// StartFlashCrowds attaches an open-loop RUBiS flash-crowd generator
// (bursts of size minSize..maxSize every ~every).
func (c *Cluster) StartFlashCrowds(every sim.Time, minSize, maxSize int, seed int64) *workload.FlashCrowd {
	mix := workload.NewMix(workload.RUBiSMix())
	return workload.StartFlashCrowd(c.Fab, workload.FlashCrowdConfig{
		FrontEnd: c.Front.ID,
		ExtID:    c.allocExt(1),
		Every:    every,
		MinSize:  minSize,
		MaxSize:  maxSize,
		Gen:      workload.MixGenerator(mix),
		Seed:     seed,
	})
}

// TotalServed sums completed requests across back-end servers,
// including servers that died and were replaced under a fault plan.
func (c *Cluster) TotalServed() uint64 {
	n := c.retiredServed
	for _, s := range c.Servers {
		n += s.Served()
	}
	return n
}

// ApplyFaults installs a fault plan on the cluster and returns the
// armed injector. Node-level faults (crash/restart/freeze) come with
// the application-level consequences wired in: a crash kills the
// back-end's web server and monitoring agent along with every other
// task on the node; a restart boots fresh ones (new worker pool, new
// agent with a fresh memory registration) and points the monitor's
// prober at the new agent — the restarted back-end then earns its way
// out of quarantine through probation, probe by probe.
func (c *Cluster) ApplyFaults(plan faults.Plan) *faults.Injector {
	in := faults.NewInjector(c.Eng, plan)
	nodes := map[int]*simos.Node{0: c.Front}
	for i, n := range c.Backends {
		nodes[i+1] = n
	}
	for _, r := range c.FrontEnds {
		nodes[r.Node.ID] = r.Node
	}
	if c.Witness != nil {
		nodes[c.Witness.ID] = c.Witness
	}
	idx := func(node int) int {
		if node < 1 || node > len(c.Backends) {
			return -1
		}
		return node - 1
	}
	in.OnCrash = func(node int) {
		if r := c.replicaByNode(node); r != nil {
			// Node.Crash killed the monitor, dispatcher and lease tasks;
			// the lease word still names the dead holder, so a standby
			// seizes a new epoch after TakeoverAfter of silence.
			r.down = true
			return
		}
		i := idx(node)
		if i < 0 {
			return
		}
		// Node.Crash already killed the tasks; mark the wrappers
		// stopped and drop the dead agent's memory registration so its
		// remote key goes invalid, as a real HCA would on power loss.
		if !c.Cfg.NoServers && c.Servers[i] != nil {
			c.retiredServed += c.Servers[i].Served()
			c.Servers[i].Stop()
		}
		if !c.Cfg.NoMonitor && c.Agents[i] != nil {
			c.Agents[i].Stop()
		}
		if len(c.Pushers) > i && c.Pushers[i] != nil {
			// Node.Crash already killed the push task mid-flight; mark the
			// wrapper stopped so a landing completion does not restart it.
			c.Pushers[i].Stop()
			c.Pushers[i] = nil
		}
		// A crashed back-end takes its accept path with it: every
		// established QP targeting it goes to the error state, so
		// pooled monitors fence and redial instead of reading a ghost.
		// No-op (and no random draws) when nothing holds QPs to it.
		c.Fab.ResetListener(node)
	}
	in.OnRestart = func(node int) {
		if r := c.replicaByNode(node); r != nil {
			c.restartReplica(r)
			return
		}
		i := idx(node)
		if i < 0 {
			return
		}
		n := c.Backends[i]
		nic := c.BNICs[i]
		if !c.Cfg.NoServers {
			c.Servers[i] = httpsim.StartServer(n, nic, c.serverConfig(i))
		}
		if !c.Cfg.NoMonitor {
			c.Agents[i] = core.StartAgent(n, nic, c.agentConfig(i))
			c.Monitor.ReplaceAgent(node, c.Agents[i])
			// Standby replicas track the reborn agent too.
			for _, r := range c.FrontEnds {
				if r.Monitor != nil && r.Monitor != c.Monitor {
					r.Monitor.ReplaceAgent(node, c.Agents[i])
				}
			}
		}
		if c.Pushers != nil {
			c.startPusher(i)
		}
	}
	in.OnMRInvalidate = func(node int) {
		i := idx(node)
		if i < 0 || c.Cfg.NoMonitor || c.Agents[i] == nil {
			return
		}
		repin := c.Cfg.MRRepin
		if repin <= 0 {
			repin = 100 * sim.Millisecond
		}
		c.Agents[i].InvalidateMR(repin)
		// Under the hybrid scheme the same MR event also invalidates the
		// back-end's slot of the front-end aggregation region: pushes
		// fail until the slot re-pins with a fresh key, exactly like
		// probes against the agent's invalidated record region.
		for _, m := range c.monitors() {
			if m.Sink != nil {
				m.Sink.InvalidateSlot(node, repin)
			}
		}
	}
	in.Install(c.Fab, nodes)
	return in
}

// EnableAdmission installs an admission controller in front of the
// dispatcher, fed by the cluster's monitor (the paper's §1 use case).
func (c *Cluster) EnableAdmission(cfg admission.Config) *admission.Controller {
	if c.Dispatcher == nil {
		panic("cluster: admission needs a dispatcher")
	}
	var source loadbalance.LoadSource
	if c.Monitor != nil {
		m := c.Monitor
		source = func(b int) (wire.LoadRecord, bool) {
			rec, _, ok := m.Latest(b)
			return rec, ok
		}
		// Admission sees back-ends exactly as dispatch does: quarantined
		// nodes are no capacity at all, degraded ones carry the same
		// index handicap the policy applies.
		if cfg.Eligible == nil {
			cfg.Eligible = func(b int) bool { return m.Health(b).Eligible() }
		}
		if cfg.Degraded == nil && c.Cfg.Failover != nil {
			cfg.Degraded = func(b int) bool { return m.Health(b) == core.Degraded }
		}
	} else {
		source = func(int) (wire.LoadRecord, bool) { return wire.LoadRecord{}, false }
	}
	ctl := admission.New(cfg, source)
	ids := c.BackendIDs()
	c.Dispatcher.Admission = func() bool { return ctl.Admit(ids) }
	return ctl
}

// StartTenantNoise launches wandering co-tenant CPU bursts across the
// back-ends (the shared-server scenario of the paper's introduction).
func (c *Cluster) StartTenantNoise(seed int64) *workload.TenantNoise {
	cfg := workload.NoiseDefaults()
	cfg.Seed = seed
	return workload.StartTenantNoise(c.Backends, cfg)
}
