// Package cluster wires the full system of the paper's evaluation: a
// front-end node running the monitoring probes and the request
// dispatcher, and N back-end nodes each running a web-server worker
// pool and the back-end half of the chosen monitoring scheme.
package cluster

import (
	"fmt"
	"math/rand"

	"rdmamon/internal/admission"
	"rdmamon/internal/core"
	"rdmamon/internal/faults"
	"rdmamon/internal/httpsim"
	"rdmamon/internal/loadbalance"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
	"rdmamon/internal/workload"
)

// PolicyName selects the dispatcher policy.
type PolicyName string

// Available dispatcher policies.
const (
	// PolicyWebSphere distributes proportionally to monitored-load
	// weights (IBM WebSphere / Network Dispatcher style, the paper's
	// algorithm). Default.
	PolicyWebSphere PolicyName = "websphere"
	// PolicyLeastLoad sends each request to the backend with the
	// smallest weighted index (strict argmin).
	PolicyLeastLoad  PolicyName = "least-load"
	PolicyRoundRobin PolicyName = "round-robin"
	PolicyRandom     PolicyName = "random"
)

// Config describes a cluster to build.
type Config struct {
	Backends int
	Scheme   core.Scheme
	Poll     sim.Time // monitoring poll/refresh interval T
	Workers  int      // web server worker pool per back-end
	Policy   PolicyName
	Seed     int64

	Node   simos.Config
	Fabric simnet.Config

	// NoServers skips the web-server pool (micro-benchmarks).
	NoServers bool
	// NoMonitor skips agents and probes entirely.
	NoMonitor bool

	// LocalWeight blends the dispatcher's own connection-count signal
	// into the least-load index (see loadbalance.WeightedLeastLoad).
	// Negative disables; zero takes the default of 0.1.
	LocalWeight float64

	// Gamma sharpens the WebSphere policy's load->weight mapping
	// (loadbalance.WeightedProportional). Zero takes that policy's
	// default.
	Gamma float64

	// ProbeTimeout bounds each monitoring probe (see core.Prober). Zero
	// keeps the seed behaviour (no deadline); fault experiments set it
	// so a dead back-end cannot stall the sequential probe cycle.
	ProbeTimeout sim.Time

	// MRRepin is how long a back-end agent takes to notice an
	// invalidated memory region and re-register it (fault plans with
	// MRInvalidations). Zero takes 100ms.
	MRRepin sim.Time

	// Failover, if non-nil, arms a per-backend transport breaker on the
	// RDMA schemes (see core.Failover): agents additionally serve the
	// socket standby port, and probes fail over to it when the RDMA
	// path breaks, failing back after it recovers. Ignored under the
	// socket schemes, which have nothing to fail over from.
	Failover *core.FailoverConfig
}

// Cluster is a fully wired simulated deployment.
type Cluster struct {
	Cfg Config

	Eng  *sim.Engine
	Fab  *simnet.Fabric
	Rand *rand.Rand

	Front *simos.Node
	FNIC  *simnet.NIC

	Backends []*simos.Node
	BNICs    []*simnet.NIC
	Servers  []*httpsim.Server

	Agents     []*core.Agent
	Monitor    *core.Monitor
	Policy     loadbalance.Policy
	Dispatcher *httpsim.Dispatcher

	extCursor     int
	retiredServed uint64 // served counts of servers replaced after a crash
}

// New builds a cluster. Node 0 is the front-end; back-ends are 1..N.
func New(cfg Config) *Cluster {
	if cfg.Backends <= 0 {
		cfg.Backends = 8
	}
	if cfg.Poll <= 0 {
		cfg.Poll = core.DefaultInterval
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyWebSphere
	}
	if cfg.Failover != nil && cfg.ProbeTimeout <= 0 {
		// Socket fallback probing needs a deadline — without one a probe
		// against a crashed report thread would stall the cycle forever.
		cfg.ProbeTimeout = cfg.Poll
	}
	c := &Cluster{Cfg: cfg, extCursor: simnet.ExternalBase}
	c.Eng = sim.NewEngine(cfg.Seed)
	c.Rand = rand.New(rand.NewSource(cfg.Seed + 1))
	c.Fab = simnet.NewFabric(c.Eng, cfg.Fabric)

	c.Front = simos.NewNode(c.Eng, 0, cfg.Node)
	c.FNIC = c.Fab.Attach(c.Front)

	for i := 1; i <= cfg.Backends; i++ {
		n := simos.NewNode(c.Eng, i, cfg.Node)
		nic := c.Fab.Attach(n)
		c.Backends = append(c.Backends, n)
		c.BNICs = append(c.BNICs, nic)
		if !cfg.NoServers {
			srv := httpsim.StartServer(n, nic, httpsim.ServerConfig{Workers: cfg.Workers, MemPerKB: 2048})
			c.Servers = append(c.Servers, srv)
		}
		if !cfg.NoMonitor {
			c.Agents = append(c.Agents, core.StartAgent(n, nic, c.agentConfig()))
		}
	}
	if !cfg.NoMonitor {
		c.Monitor = core.StartMonitor(c.Front, c.FNIC, c.Agents, cfg.Poll)
		c.Monitor.SetProbeTimeout(cfg.ProbeTimeout)
		if cfg.Failover != nil && cfg.Scheme.UsesRDMA() {
			c.Monitor.ArmFailover(*cfg.Failover)
		}
	}
	c.Policy = c.buildPolicy()
	if !cfg.NoServers {
		c.Dispatcher = httpsim.StartDispatcher(c.Front, c.FNIC, c.Policy)
		lw := cfg.LocalWeight
		switch {
		case lw < 0:
			lw = 0
		case lw == 0:
			lw = 0.1
		}
		switch p := c.Policy.(type) {
		case *loadbalance.WeightedLeastLoad:
			p.LocalWeight = lw
			p.LocalFrac = c.Dispatcher.LocalFrac
		case *loadbalance.WeightedProportional:
			p.LocalWeight = lw
			p.LocalFrac = c.Dispatcher.LocalFrac
		}
	}
	return c
}

// agentConfig is the per-backend agent configuration, shared by New
// and the fault injector's restart path so a rebooted agent comes back
// with the same standby-channel arrangement it died with.
func (c *Cluster) agentConfig() core.AgentConfig {
	return core.AgentConfig{
		Scheme:        c.Cfg.Scheme,
		Interval:      c.Cfg.Poll,
		StandbySocket: c.Cfg.Failover != nil && c.Cfg.Scheme.UsesRDMA(),
	}
}

func (c *Cluster) buildPolicy() loadbalance.Policy {
	ids := c.BackendIDs()
	switch c.Cfg.Policy {
	case PolicyRoundRobin:
		return &loadbalance.RoundRobin{Backends: ids}
	case PolicyRandom:
		return &loadbalance.Random{Backends: ids, Rng: c.Rand}
	case PolicyLeastLoad, PolicyWebSphere:
		var source loadbalance.LoadSource
		var exclude, degraded func(int) bool
		if c.Monitor != nil {
			m := c.Monitor
			source = func(b int) (wire.LoadRecord, bool) {
				rec, _, ok := m.Latest(b)
				return rec, ok
			}
			// Quarantined back-ends (3 consecutive failed probes) get
			// zero traffic until they pass probation.
			exclude = func(b int) bool { return !m.Health(b).Eligible() }
			if c.Cfg.Failover != nil {
				// Back-ends monitored over the socket standby stay in the
				// dispatch set but carry a small index handicap.
				degraded = func(b int) bool { return m.Health(b) == core.Degraded }
			}
		} else {
			source = func(int) (wire.LoadRecord, bool) { return wire.LoadRecord{}, false }
		}
		if c.Cfg.Policy == PolicyLeastLoad {
			return &loadbalance.WeightedLeastLoad{
				Backends: ids,
				Weights:  core.WeightsFor(c.Cfg.Scheme),
				Source:   source,
				Rng:      c.Rand,
				Exclude:  exclude,
				Degraded: degraded,
				Picks:    make(map[int]uint64),
			}
		}
		wp := &loadbalance.WeightedProportional{
			Backends:   ids,
			Weights:    core.WeightsFor(c.Cfg.Scheme),
			Source:     source,
			Rng:        c.Rand,
			Gamma:      c.Cfg.Gamma,
			StaleAfter: 250 * sim.Millisecond,
			Exclude:    exclude,
			Degraded:   degraded,
			Picks:      make(map[int]uint64),
		}
		if c.Monitor != nil {
			m := c.Monitor
			eng := c.Eng
			wp.Aged = func(b int) (wire.LoadRecord, sim.Time, bool) {
				rec, at, ok := m.Latest(b)
				return rec, eng.Now() - at, ok
			}
		}
		return wp
	default:
		panic(fmt.Sprintf("cluster: unknown policy %q", c.Cfg.Policy))
	}
}

// BackendIDs lists the back-end node IDs (1..N).
func (c *Cluster) BackendIDs() []int {
	ids := make([]int, len(c.Backends))
	for i := range c.Backends {
		ids[i] = i + 1
	}
	return ids
}

// Run advances the simulation by d.
func (c *Cluster) Run(d sim.Time) { c.Eng.RunFor(d) }

// allocExt reserves n external client IDs and returns the base.
func (c *Cluster) allocExt(n int) int {
	base := c.extCursor
	c.extCursor -= n
	return base
}

// StartRUBiS attaches a closed-loop RUBiS client population.
func (c *Cluster) StartRUBiS(clients int, think sim.Time, seed int64) *workload.ClientPool {
	mix := workload.NewMix(workload.RUBiSMix())
	return workload.StartClients(c.Fab, workload.ClientPoolConfig{
		Clients:   clients,
		ThinkMean: think,
		FrontEnd:  c.Front.ID,
		ExtBase:   c.allocExt(clients),
		Gen:       workload.MixGenerator(mix),
		Seed:      seed,
	})
}

// StartZipf attaches a closed-loop Zipf-trace client population.
func (c *Cluster) StartZipf(z *workload.ZipfTrace, clients int, think sim.Time, seed int64) *workload.ClientPool {
	return workload.StartClients(c.Fab, workload.ClientPoolConfig{
		Clients:   clients,
		ThinkMean: think,
		FrontEnd:  c.Front.ID,
		ExtBase:   c.allocExt(clients),
		Gen:       workload.ZipfGenerator(z),
		Seed:      seed,
	})
}

// StartFlashCrowds attaches an open-loop RUBiS flash-crowd generator
// (bursts of size minSize..maxSize every ~every).
func (c *Cluster) StartFlashCrowds(every sim.Time, minSize, maxSize int, seed int64) *workload.FlashCrowd {
	mix := workload.NewMix(workload.RUBiSMix())
	return workload.StartFlashCrowd(c.Fab, workload.FlashCrowdConfig{
		FrontEnd: c.Front.ID,
		ExtID:    c.allocExt(1),
		Every:    every,
		MinSize:  minSize,
		MaxSize:  maxSize,
		Gen:      workload.MixGenerator(mix),
		Seed:     seed,
	})
}

// TotalServed sums completed requests across back-end servers,
// including servers that died and were replaced under a fault plan.
func (c *Cluster) TotalServed() uint64 {
	n := c.retiredServed
	for _, s := range c.Servers {
		n += s.Served()
	}
	return n
}

// ApplyFaults installs a fault plan on the cluster and returns the
// armed injector. Node-level faults (crash/restart/freeze) come with
// the application-level consequences wired in: a crash kills the
// back-end's web server and monitoring agent along with every other
// task on the node; a restart boots fresh ones (new worker pool, new
// agent with a fresh memory registration) and points the monitor's
// prober at the new agent — the restarted back-end then earns its way
// out of quarantine through probation, probe by probe.
func (c *Cluster) ApplyFaults(plan faults.Plan) *faults.Injector {
	in := faults.NewInjector(c.Eng, plan)
	nodes := map[int]*simos.Node{0: c.Front}
	for i, n := range c.Backends {
		nodes[i+1] = n
	}
	idx := func(node int) int {
		if node < 1 || node > len(c.Backends) {
			return -1
		}
		return node - 1
	}
	in.OnCrash = func(node int) {
		i := idx(node)
		if i < 0 {
			return
		}
		// Node.Crash already killed the tasks; mark the wrappers
		// stopped and drop the dead agent's memory registration so its
		// remote key goes invalid, as a real HCA would on power loss.
		if !c.Cfg.NoServers && c.Servers[i] != nil {
			c.retiredServed += c.Servers[i].Served()
			c.Servers[i].Stop()
		}
		if !c.Cfg.NoMonitor && c.Agents[i] != nil {
			c.Agents[i].Stop()
		}
	}
	in.OnRestart = func(node int) {
		i := idx(node)
		if i < 0 {
			return
		}
		n := c.Backends[i]
		nic := c.BNICs[i]
		if !c.Cfg.NoServers {
			c.Servers[i] = httpsim.StartServer(n, nic, httpsim.ServerConfig{
				Workers: c.Cfg.Workers, MemPerKB: 2048,
			})
		}
		if !c.Cfg.NoMonitor {
			c.Agents[i] = core.StartAgent(n, nic, c.agentConfig())
			c.Monitor.ReplaceAgent(node, c.Agents[i])
		}
	}
	in.OnMRInvalidate = func(node int) {
		i := idx(node)
		if i < 0 || c.Cfg.NoMonitor || c.Agents[i] == nil {
			return
		}
		repin := c.Cfg.MRRepin
		if repin <= 0 {
			repin = 100 * sim.Millisecond
		}
		c.Agents[i].InvalidateMR(repin)
	}
	in.Install(c.Fab, nodes)
	return in
}

// EnableAdmission installs an admission controller in front of the
// dispatcher, fed by the cluster's monitor (the paper's §1 use case).
func (c *Cluster) EnableAdmission(cfg admission.Config) *admission.Controller {
	if c.Dispatcher == nil {
		panic("cluster: admission needs a dispatcher")
	}
	var source loadbalance.LoadSource
	if c.Monitor != nil {
		m := c.Monitor
		source = func(b int) (wire.LoadRecord, bool) {
			rec, _, ok := m.Latest(b)
			return rec, ok
		}
	} else {
		source = func(int) (wire.LoadRecord, bool) { return wire.LoadRecord{}, false }
	}
	ctl := admission.New(cfg, source)
	ids := c.BackendIDs()
	c.Dispatcher.Admission = func() bool { return ctl.Admit(ids) }
	return ctl
}

// StartTenantNoise launches wandering co-tenant CPU bursts across the
// back-ends (the shared-server scenario of the paper's introduction).
func (c *Cluster) StartTenantNoise(seed int64) *workload.TenantNoise {
	cfg := workload.NoiseDefaults()
	cfg.Seed = seed
	return workload.StartTenantNoise(c.Backends, cfg)
}
