package cluster

import (
	"testing"

	"rdmamon/internal/core"
	"rdmamon/internal/faults"
	"rdmamon/internal/sim"
)

func haConfig(replicas int) Config {
	return Config{
		Backends:    4,
		Scheme:      core.RDMASync,
		Seed:        11,
		Policy:      PolicyWebSphere,
		LocalWeight: -1,
		Gamma:       4,
		Replicas:    replicas,
	}
}

func TestHAWiring(t *testing.T) {
	c := New(haConfig(3))
	if len(c.FrontEnds) != 3 {
		t.Fatalf("replicas = %d, want 3", len(c.FrontEnds))
	}
	if c.FrontEnds[0].Node != c.Front || c.FrontEnds[0].Dispatcher != c.Dispatcher {
		t.Fatal("replica 0 must alias the classic front-end")
	}
	want := []int{0, 5, 6}
	for i, id := range c.FrontEndIDs() {
		if id != want[i] {
			t.Fatalf("front-end IDs = %v, want %v", c.FrontEndIDs(), want)
		}
	}
	if c.Witness.ID != 7 {
		t.Fatalf("witness node = %d, want 7", c.Witness.ID)
	}
	for _, r := range c.FrontEnds {
		if r.Monitor == nil || r.Dispatcher == nil || r.LeaseMgr == nil {
			t.Fatalf("replica %d incompletely wired", r.Index)
		}
		if r.Dispatcher.Fence == nil {
			t.Fatalf("replica %d dispatcher not fenced", r.Index)
		}
	}
}

func TestHAExactlyOnePrimaryAndWarmStandbys(t *testing.T) {
	c := New(haConfig(3))
	c.Run(2 * sim.Second)
	valid := 0
	for _, r := range c.FrontEnds {
		if r.LeaseMgr.Lease.Valid(c.Eng.Now()) {
			valid++
		}
	}
	if valid != 1 {
		t.Fatalf("%d valid lease holders, want exactly 1", valid)
	}
	if c.Primary() == nil {
		t.Fatal("Primary() found nobody")
	}
	// Every replica — including the standbys — has a warm load view of
	// every back-end.
	for _, r := range c.FrontEnds {
		for _, b := range c.BackendIDs() {
			if _, _, ok := r.Monitor.Latest(b); !ok {
				t.Fatalf("replica %d has no record for back-end %d", r.Index, b)
			}
		}
	}
}

// TestHAStandbysCostBackendsNothing is the acceptance criterion that
// the paper's economics survive replication: under RDMA-Sync, going
// from one front-end to three adds zero back-end tasks and zero
// back-end interrupts — shadow monitoring is free to the monitored.
func TestHAStandbysCostBackendsNothing(t *testing.T) {
	irqs := func(replicas int) []uint64 {
		cfg := haConfig(replicas)
		cfg.NoServers = true // isolate monitoring cost from request traffic
		c := New(cfg)
		for _, a := range c.Agents {
			if got := a.BackendTasks(); got != 0 {
				t.Fatalf("RDMA-Sync agent runs %d back-end tasks, want 0", got)
			}
		}
		c.Run(5 * sim.Second)
		var out []uint64
		for _, n := range c.Backends {
			total := uint64(0)
			for cpu := range n.K.CumIRQHard {
				total += n.K.CumIRQHard[cpu] + n.K.CumIRQSoft[cpu]
			}
			out = append(out, total)
		}
		return out
	}
	one, three := irqs(1), irqs(3)
	for i := range one {
		if one[i] != three[i] {
			t.Fatalf("back-end %d IRQs: 1 replica=%d, 3 replicas=%d — standby probing must be free",
				i+1, one[i], three[i])
		}
	}
}

func TestHAPrimaryCrashFailsOverAndRestartRejoins(t *testing.T) {
	c := New(haConfig(3))
	c.Run(2 * sim.Second)
	prim := c.Primary()
	if prim == nil {
		t.Fatal("no primary")
	}
	epoch0 := prim.LeaseMgr.Lease.Epoch()

	crashAt := c.Eng.Now()
	plan := faults.Plan{Crashes: []faults.Crash{{
		Node: prim.Node.ID, At: crashAt + 10*sim.Millisecond, RestartAt: crashAt + 4*sim.Second,
	}}}
	c.ApplyFaults(plan)

	lease := c.Cfg.Lease.WithDefaults(c.Cfg.Poll)
	c.Run(10*sim.Millisecond + lease.TakeoverAfter + 4*lease.CheckEvery)
	next := c.Primary()
	if next == nil {
		t.Fatal("no takeover after the primary crash")
	}
	if next == prim {
		t.Fatal("crashed replica still primary")
	}
	if next.LeaseMgr.Lease.Epoch() <= epoch0 {
		t.Fatalf("epoch did not advance: %d -> %d", epoch0, next.LeaseMgr.Lease.Epoch())
	}

	// After restart the old primary rejoins as a follower with fresh
	// state and must not disturb the new epoch.
	c.Run(4 * sim.Second)
	if prim.Down() {
		t.Fatal("replica not marked restarted")
	}
	rejoined := c.replicaByNode(prim.Node.ID)
	if rejoined.LeaseMgr.Lease.Role() != core.RoleFollower {
		t.Fatalf("restarted replica should follow, is %v", rejoined.LeaseMgr.Lease.Role())
	}
	if got := c.Primary(); got == nil || got.Node.ID != next.Node.ID {
		t.Fatal("restart disturbed the standing primary")
	}
	// And its monitor re-warmed.
	for _, b := range c.BackendIDs() {
		if _, _, ok := rejoined.Monitor.Latest(b); !ok {
			t.Fatalf("rejoined replica has no record for back-end %d", b)
		}
	}
}

// TestHAClientsFollowThePrimary drives real traffic through a primary
// crash: clients retarget via NotPrimary replies and timeouts, and
// service continues under the new epoch with zero fenced routes.
func TestHAClientsFollowThePrimary(t *testing.T) {
	cfg := haConfig(3)
	cfg.Backends = 4
	c := New(cfg)
	pool := c.StartRUBiS(32, 30*sim.Millisecond, 99)
	c.Run(2 * sim.Second)
	prim := c.Primary()
	if prim == nil {
		t.Fatal("no primary")
	}
	served0 := c.TotalServed()
	if served0 == 0 {
		t.Fatal("no traffic before the crash")
	}

	crashAt := c.Eng.Now() + 10*sim.Millisecond
	c.ApplyFaults(faults.Plan{Crashes: []faults.Crash{{Node: prim.Node.ID, At: crashAt}}})
	c.Run(8 * sim.Second)

	if c.Primary() == nil {
		t.Fatal("no primary after crash")
	}
	served1 := c.TotalServed()
	if served1 <= served0 {
		t.Fatalf("service did not continue after failover: %d -> %d", served0, served1)
	}
	if pool.Retargets == 0 {
		t.Fatal("clients never retargeted")
	}
	// Fenced standbys must have answered NotPrimary, not routed.
	for _, r := range c.FrontEnds {
		if r == prim || r.Dispatcher == nil {
			continue
		}
		if r.LeaseMgr.Lease.Role() == core.RoleFollower && r.Dispatcher.Routed > 0 && !r.LeaseMgr.Lease.Valid(c.Eng.Now()) {
			// Routed counts requests routed while it held the lease —
			// acceptable only if it was primary at some point.
			if r.LeaseMgr.Lease.Takeovers == 0 {
				t.Fatalf("follower replica %d routed %d requests", r.Index, r.Dispatcher.Routed)
			}
		}
	}
}
