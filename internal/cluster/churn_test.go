package cluster

import (
	"testing"

	"rdmamon/internal/connpool"
	"rdmamon/internal/core"
	"rdmamon/internal/faults"
	"rdmamon/internal/sim"
	"rdmamon/internal/wire"
)

// TestPoolSurvivesConnectionChurn is the connection-churn chaos
// scenario: 25% of the back-ends crash and restart every cycle, for
// several cycles, under a pooled monitor whose budget covers the fleet
// (so conns persist between sweeps and every listener reset lands on a
// live pooled QP). After the storm the pool must converge (size within
// budget, no dials in flight, dead targets' conns recycled), every
// opened dial breaker must have re-armed, the epoch fence must have
// been exercised with zero violations (no probe error ever attributed
// to a recycled conn, no stale record served — record streams stay
// monotonically fresh), and teardown must leak nothing.
func TestPoolSurvivesConnectionChurn(t *testing.T) {
	const (
		n        = 32
		maxConns = 40
		cycles   = 4
	)
	poll := 10 * sim.Millisecond
	cycle := 400 * sim.Millisecond
	c := New(Config{
		Backends:      n,
		Scheme:        core.RDMASync,
		Poll:          poll,
		Seed:          77,
		NoServers:     true,
		ProbeTimeout:  poll,
		MonitorShards: 4,
		MonitorBatch:  8,
		Pool: &connpool.Config{
			MaxConns:      maxConns,
			DialsPerSec:   2000,
			IdleAfterNS:   int64(200 * sim.Millisecond),
			BackoffNS:     int64(5 * sim.Millisecond),
			BreakAfter:    2,
			ReopenAfterNS: int64(50 * sim.Millisecond),
		},
	})

	// Churn plan: each cycle k crashes a rotating 25% slice of the
	// fleet at k*cycle and restarts it 300ms later. The down window is
	// long enough for BreakAfter consecutive dial timeouts, so every
	// crash also exercises the breaker open -> half-open -> close arc.
	var plan faults.Plan
	plan.Seed = 77
	quarter := n / 4
	for k := 0; k < cycles; k++ {
		at := sim.Time(k+1) * cycle
		for j := 0; j < quarter; j++ {
			node := 1 + (k*quarter+j)%n
			plan.Crashes = append(plan.Crashes, faults.Crash{
				Node: node, At: at, RestartAt: at + 300*sim.Millisecond,
			})
		}
	}
	c.ApplyFaults(plan)

	// Record-stream freshness watchdog: a served stale-epoch read
	// would surface as a record whose kernel timestamp regresses.
	lastK := make(map[int]int64)
	for _, b := range c.BackendIDs() {
		b := b
		c.Monitor.Probers[b].OnRecord = func(rec wire.LoadRecord, at sim.Time) {
			if rec.KTimeNS < lastK[b] {
				t.Errorf("backend %d: kernel time regressed %d -> %d (stale record served)",
					b, lastK[b], rec.KTimeNS)
			}
			lastK[b] = rec.KTimeNS
		}
	}

	// Run the storm plus two quiet cycles to settle.
	c.Run(sim.Time(cycles+1)*cycle + 2*sim.Second)

	m := c.Monitor
	pool := m.Pool()
	s := pool.Stats()

	// The fence was exercised (crashes reset listeners under in-use
	// conns) and no violation was recorded: FenceRejects counts reads
	// that were rejected AND replayed; served stale reads would have
	// tripped the watchdog above.
	if m.FenceRejects == 0 {
		t.Fatal("churn never exercised the epoch fence")
	}

	// Pool size converged: within budget, nothing mid-dial, dials
	// stopped growing once the fleet settled.
	if s.Live > maxConns || s.MaxLive > maxConns {
		t.Fatalf("pool exceeded budget: live=%d high-water=%d > %d", s.Live, s.MaxLive, maxConns)
	}
	if s.Dialing != 0 {
		t.Fatalf("%d dials still in flight after settling", s.Dialing)
	}
	dialsBefore := s.Dials
	c.Run(sim.Second)
	if grew := pool.Stats().Dials - dialsBefore; grew > uint64(2*n) {
		t.Fatalf("pool still churning after storm: %d dials in one quiet second", grew)
	}

	// Breakers opened during the storm have all re-armed.
	if s.BreakerOpens == 0 {
		t.Fatal("crash cycles never opened a dial breaker")
	}
	if open := pool.BreakersOpen(); open != 0 {
		t.Fatalf("%d dial breakers still open after recovery", open)
	}

	// Every back-end recovered: healthy again, records fresh.
	for _, b := range c.BackendIDs() {
		if h := m.Health(b); h != core.Healthy {
			t.Fatalf("backend %d health = %v after churn settled", b, h)
		}
		if _, at, ok := m.Latest(b); !ok || c.Eng.Now()-at > 5*poll {
			t.Fatalf("backend %d records stale after recovery", b)
		}
	}

	// Teardown: no leaked conns, QPs or fds.
	m.Stop()
	if got := pool.Stats().Live; got != 0 {
		t.Fatalf("conns leaked after Stop: %d", got)
	}
	if c.FNIC.QPsOpen() != 0 || c.FNIC.FDsInUse() != 0 {
		t.Fatalf("leaked QPs=%d fds=%d after Stop", c.FNIC.QPsOpen(), c.FNIC.FDsInUse())
	}
}
