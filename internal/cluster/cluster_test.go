package cluster

import (
	"testing"

	"rdmamon/internal/core"
	"rdmamon/internal/loadbalance"
	"rdmamon/internal/sim"
	"rdmamon/internal/workload"
)

func TestNewClusterWiring(t *testing.T) {
	c := New(Config{Backends: 4, Scheme: core.RDMASync, Seed: 1})
	if len(c.Backends) != 4 || len(c.Servers) != 4 || len(c.Agents) != 4 {
		t.Fatalf("wiring: %d backends, %d servers, %d agents",
			len(c.Backends), len(c.Servers), len(c.Agents))
	}
	if c.Front.ID != 0 {
		t.Fatal("front-end must be node 0")
	}
	ids := c.BackendIDs()
	for i, id := range ids {
		if id != i+1 {
			t.Fatalf("backend IDs = %v", ids)
		}
	}
	if c.Dispatcher == nil || c.Monitor == nil {
		t.Fatal("dispatcher/monitor missing")
	}
	c.Run(200 * sim.Millisecond)
	for _, b := range ids {
		if _, _, ok := c.Monitor.Latest(b); !ok {
			t.Fatalf("no record for backend %d after 200ms", b)
		}
	}
}

func TestClusterRUBiSEndToEnd(t *testing.T) {
	for _, s := range []core.Scheme{core.SocketSync, core.RDMASync} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			c := New(Config{Backends: 4, Scheme: s, Seed: 2})
			pool := c.StartRUBiS(32, 100*sim.Millisecond, 3)
			c.Run(5 * sim.Second)
			if pool.Completed < 500 {
				t.Fatalf("completed = %d, want a busy cluster", pool.Completed)
			}
			if c.TotalServed() != pool.Completed {
				t.Fatalf("served %d != completed %d (requests lost?)",
					c.TotalServed(), pool.Completed)
			}
			// All backends must participate.
			for _, srv := range c.Servers {
				if srv.Served() == 0 {
					t.Fatal("a backend served nothing: balancing broken")
				}
			}
			// Closed loop at moderate load: mean response within a
			// small multiple of mean service demand.
			if m := pool.All.Mean(); m < 1 || m > 50 {
				t.Fatalf("mean response = %.1fms, implausible", m)
			}
		})
	}
}

func TestClusterPolicies(t *testing.T) {
	for _, p := range []PolicyName{PolicyLeastLoad, PolicyRoundRobin, PolicyRandom} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			c := New(Config{Backends: 3, Scheme: core.RDMASync, Policy: p, Seed: 4})
			pool := c.StartRUBiS(12, 100*sim.Millisecond, 5)
			c.Run(3 * sim.Second)
			if pool.Completed == 0 {
				t.Fatal("no requests completed")
			}
		})
	}
}

func TestClusterUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown policy should panic")
		}
	}()
	New(Config{Backends: 2, Scheme: core.RDMASync, Policy: "bogus", Seed: 1})
}

func TestClusterNoMonitorNoServers(t *testing.T) {
	c := New(Config{Backends: 2, Scheme: core.RDMASync, NoMonitor: true, NoServers: true, Seed: 1})
	if c.Monitor != nil || c.Dispatcher != nil || len(c.Servers) != 0 || len(c.Agents) != 0 {
		t.Fatal("NoMonitor/NoServers should skip those components")
	}
	// Least-load policy with no monitor behaves (all score 0).
	wl := c.Policy.(*loadbalance.WeightedProportional)
	b := wl.Pick()
	if b < 1 || b > 2 {
		t.Fatalf("pick = %d", b)
	}
	c.Run(100 * sim.Millisecond)
}

func TestClusterMultiplePoolsDistinctClients(t *testing.T) {
	c := New(Config{Backends: 4, Scheme: core.RDMASync, Seed: 6})
	p1 := c.StartRUBiS(8, 100*sim.Millisecond, 7)
	z := workload.NewZipfTrace(2000, 0.5, 8)
	p2 := c.StartZipf(z, 8, 100*sim.Millisecond, 9)
	c.Run(3 * sim.Second)
	if p1.Completed == 0 || p2.Completed == 0 {
		t.Fatalf("both pools must progress: %d / %d", p1.Completed, p2.Completed)
	}
	if c.TotalServed() != p1.Completed+p2.Completed {
		t.Fatalf("served %d != %d+%d", c.TotalServed(), p1.Completed, p2.Completed)
	}
	if _, ok := p2.PerClass["zipf"]; !ok {
		t.Fatal("zipf pool should record the zipf class")
	}
}

func TestClusterDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		c := New(Config{Backends: 4, Scheme: core.SocketAsync, Seed: 42})
		pool := c.StartRUBiS(16, 100*sim.Millisecond, 43)
		c.Run(3 * sim.Second)
		return pool.Completed, pool.All.Mean()
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 || m1 != m2 {
		t.Fatalf("nondeterministic cluster: (%d,%v) vs (%d,%v)", c1, m1, c2, m2)
	}
}
