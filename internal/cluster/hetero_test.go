package cluster

import (
	"testing"

	"rdmamon/internal/core"
	"rdmamon/internal/faults"
	"rdmamon/internal/sim"
)

// TestBackendSpecsHonored: per-backend overrides land on the right
// node — CPU count, worker pool, agent interval and NIC latency — and
// unlisted back-ends keep the fleet defaults.
func TestBackendSpecsHonored(t *testing.T) {
	c := New(Config{
		Backends: 4, Scheme: core.RDMASync, Seed: 1, Workers: 8,
		BackendSpecs: []BackendSpec{
			{Template: "fast", CPUs: 4, Workers: 16, AgentInterval: 20 * sim.Millisecond},
			{Template: "slow", CPUs: 1, Workers: 2, NICLatency: 100 * sim.Microsecond},
		},
	})
	if got := c.Backends[0].NumCPU(); got != 4 {
		t.Errorf("backend 1 CPUs = %d, want 4", got)
	}
	if got := c.Backends[1].NumCPU(); got != 1 {
		t.Errorf("backend 2 CPUs = %d, want 1", got)
	}
	if got := c.Backends[2].NumCPU(); got == 4 || got == 1 {
		t.Errorf("backend 3 CPUs = %d, want the node default", got)
	}
	if got := c.Servers[0].Cfg.Workers; got != 16 {
		t.Errorf("backend 1 workers = %d, want 16", got)
	}
	if got := c.Servers[1].Cfg.Workers; got != 2 {
		t.Errorf("backend 2 workers = %d, want 2", got)
	}
	if got := c.Servers[2].Cfg.Workers; got != 8 {
		t.Errorf("backend 3 workers = %d, want the default 8", got)
	}
	if got := c.Agents[0].Cfg.Interval; got != 20*sim.Millisecond {
		t.Errorf("backend 1 agent interval = %v, want 20ms", got)
	}
	if got := c.Agents[1].Cfg.Interval; got != c.Cfg.Poll {
		t.Errorf("backend 2 agent interval = %v, want the poll default %v", got, c.Cfg.Poll)
	}
	if got := c.Fab.NodeLatency(2); got != 100*sim.Microsecond {
		t.Errorf("backend 2 NIC latency = %v, want 100us", got)
	}
	if got := c.Fab.NodeLatency(1); got != 0 {
		t.Errorf("backend 1 NIC latency = %v, want 0", got)
	}
}

// TestBackendSpecsSurviveRestart: a crash/restart cycle rebuilds the
// back-end's server and agent from its spec, not the fleet defaults.
func TestBackendSpecsSurviveRestart(t *testing.T) {
	c := New(Config{
		Backends: 2, Scheme: core.RDMASync, Seed: 1, Workers: 8,
		BackendSpecs: []BackendSpec{
			{Template: "fast", CPUs: 4, Workers: 16, AgentInterval: 20 * sim.Millisecond},
		},
	})
	c.ApplyFaults(faults.Plan{Crashes: []faults.Crash{
		{Node: 1, At: 100 * sim.Millisecond, RestartAt: 300 * sim.Millisecond},
	}})
	c.Run(sim.Second)
	if got := c.Servers[0].Cfg.Workers; got != 16 {
		t.Errorf("restarted server workers = %d, want 16", got)
	}
	if got := c.Agents[0].Cfg.Interval; got != 20*sim.Millisecond {
		t.Errorf("restarted agent interval = %v, want 20ms", got)
	}
	if got := c.Backends[0].NumCPU(); got != 4 {
		t.Errorf("restarted node CPUs = %d, want 4", got)
	}
	if _, _, ok := c.Monitor.Latest(1); !ok {
		t.Error("no record from the restarted back-end")
	}
}
