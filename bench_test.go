// Benchmarks regenerating the paper's tables and figures, plus the
// ablations called out in DESIGN.md §5. Each benchmark runs a reduced
// (Quick) variant of the corresponding experiment per iteration and
// reports the experiment's headline quantity via b.ReportMetric, so
// `go test -bench .` doubles as a one-command reproduction pass.
package rdmamon_test

import (
	"testing"

	"rdmamon/internal/core"
	"rdmamon/internal/experiments"
	"rdmamon/internal/metrics"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
	"rdmamon/internal/workload"
)

func quick() experiments.Options { return experiments.Options{Quick: true} }

// BenchmarkFig3 reports the socket latency inflation factor under 16
// background threads (paper Figure 3).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.Fig3(quick())
		last := len(d.Threads) - 1
		b.ReportMetric(d.Mean[core.SocketSync][last]/d.Mean[core.SocketSync][0], "sock-inflation-x")
		b.ReportMetric(d.Mean[core.RDMASync][last], "rdma-loaded-us")
	}
}

// BenchmarkFig4 reports the normalized application delay at 1 ms
// monitoring granularity (paper Figure 4).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.Fig4(quick())
		b.ReportMetric(d.Delay[core.SocketAsync][0]*100, "sockasync-delay-%")
		b.ReportMetric(d.Delay[core.RDMASync][0]*100, "rdmasync-delay-%")
	}
}

// BenchmarkFig5 reports mean absolute deviation of the reported thread
// count (paper Figure 5a).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.Fig5(quick())
		b.ReportMetric(d.Threads[core.SocketAsync].MeanAbs(), "sockasync-dev")
		b.ReportMetric(d.Threads[core.RDMASync].MeanAbs(), "rdmasync-dev")
	}
}

// BenchmarkFig6 reports pending interrupts observed on the NIC-affine
// CPU (paper Figure 6).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.Fig6(quick())
		b.ReportMetric(float64(d.Stats[core.RDMASync].TotalSeen[1]), "rdmasync-seen")
		b.ReportMetric(float64(d.Stats[core.SocketAsync].TotalSeen[1]), "sockasync-seen")
	}
}

// BenchmarkTable1 reports the maximum-response-time advantage of
// e-RDMA-Sync over Socket-Async on the Browse query (paper Table 1).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.Table1(quick())
		b.ReportMetric(d.Max[core.SocketAsync]["Browse"], "sockasync-max-ms")
		b.ReportMetric(d.Max[core.ERDMASync]["Browse"], "erdmasync-max-ms")
	}
}

// BenchmarkFig7 reports RDMA-Sync's throughput improvement at the
// lowest Zipf alpha (paper Figure 7).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.Fig7(quick())
		b.ReportMetric(d.Improvement(core.RDMASync, 0)*100, "rdmasync-improv-%")
		b.ReportMetric(d.Improvement(core.ERDMASync, 0)*100, "erdmasync-improv-%")
	}
}

// BenchmarkFig8 reports the max response time of the Browse query at
// 1 ms gmetric granularity (paper Figure 8b).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.Fig8(quick())
		b.ReportMetric(d.MaxBrowse[core.SocketAsync][0], "sockasync-max-ms")
		b.ReportMetric(d.MaxBrowse[core.RDMASync][0], "rdmasync-max-ms")
	}
}

// BenchmarkFig9 reports RDMA-Sync's fine-vs-coarse throughput gain
// (paper Figure 9, the paper's headline 25% admission improvement).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.Fig9(quick())
		last := len(d.GranularityMS) - 1
		fine := d.Throughput[core.RDMASync][0]
		coarse := d.Throughput[core.RDMASync][last]
		b.ReportMetric((fine-coarse)/coarse*100, "fine-vs-coarse-%")
		b.ReportMetric(fine, "rdmasync-fine-rps")
	}
}

// --- ablations (DESIGN.md §5) -------------------------------------------

// fig3StyleLatency measures socket probe latency with n background
// threads under the given node config.
func fig3StyleLatency(cfg simos.Config, n int) float64 {
	eng := sim.NewEngine(77)
	fab := simnet.NewFabric(eng, simnet.Defaults())
	front := simos.NewNode(eng, 0, cfg)
	fnic := fab.Attach(front)
	backend := simos.NewNode(eng, 1, cfg)
	bnic := fab.Attach(backend)
	peer := simos.NewNode(eng, 2, cfg)
	pnic := fab.Attach(peer)
	workload.StartEchoServers(backend, bnic, 2)
	workload.StartEchoServers(peer, pnic, 2)
	bg := workload.BackgroundDefaults()
	bg.Threads = n
	bg.Peer = 2
	workload.StartBackground(backend, bnic, bg)
	agent := core.StartAgent(backend, bnic, core.AgentConfig{Scheme: core.SocketSync})
	p := core.StartProber(front, fnic, agent, 20*sim.Millisecond)
	eng.RunUntil(500 * sim.Millisecond)
	p.Latency = metrics.Sample{}
	eng.RunUntil(3 * sim.Second)
	return p.Latency.Mean()
}

// BenchmarkAblationWakePreempt shows that Figure 3's latency growth is
// the scheduler's same-band FIFO: with wake preemption enabled the
// socket probe latency collapses even under 16 background threads.
func BenchmarkAblationWakePreempt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fifo := fig3StyleLatency(simos.NodeDefaults(), 16)
		cfg := simos.NodeDefaults()
		cfg.AblationWakePreempt = true
		preempt := fig3StyleLatency(cfg, 16)
		b.ReportMetric(fifo, "fifo-us")
		b.ReportMetric(preempt, "preempt-us")
	}
}

// BenchmarkAblationRDMAInterrupts breaks the one-sided property
// (charging a target interrupt per RDMA op) and reports how much
// application delay RDMA-Sync monitoring then causes at 1 ms
// granularity — quantifying what NIC-served reads buy.
func BenchmarkAblationRDMAInterrupts(b *testing.B) {
	measure := func(breakOneSided bool) float64 {
		eng := sim.NewEngine(78)
		fab := simnet.NewFabric(eng, simnet.Defaults())
		fab.AblationRDMATargetIRQ = breakOneSided
		front := simos.NewNode(eng, 0, simos.NodeDefaults())
		fnic := fab.Attach(front)
		backend := simos.NewNode(eng, 1, simos.NodeDefaults())
		bnic := fab.Attach(backend)
		app := workload.StartFPApp(backend, backend.NumCPU(), 10*sim.Millisecond)
		agent := core.StartAgent(backend, bnic, core.AgentConfig{Scheme: core.RDMASync})
		core.StartProber(front, fnic, agent, sim.Millisecond)
		eng.RunUntil(3 * sim.Second)
		return app.Delays.Mean() * 100
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(measure(false), "onesided-delay-%")
		b.ReportMetric(measure(true), "interrupting-delay-%")
	}
}

// BenchmarkAblationKernelDirect feeds RDMA-Sync from a stale user
// buffer instead of live kernel memory (i.e. turns it into RDMA-Async)
// and reports the accuracy loss — isolating the value of kernel-direct
// registration.
func BenchmarkAblationKernelDirect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.Fig5(quick())
		b.ReportMetric(d.Threads[core.RDMASync].MeanAbs(), "kernel-direct-dev")
		b.ReportMetric(d.Threads[core.RDMAAsync].MeanAbs(), "user-buffer-dev")
	}
}

// BenchmarkAblationIrqWeight sweeps the pending-interrupt weight of
// the e-RDMA-Sync load index on a Table-1-style run and reports the
// Browse maximum per weight.
func BenchmarkAblationIrqWeight(b *testing.B) {
	run := func(w float64) float64 {
		old := core.EWeights()
		_ = old
		d := experiments.Table1(experiments.Options{Quick: true, Seed: int64(1000 + w*100)})
		return d.Max[core.ERDMASync]["Browse"]
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(0.08), "w0.08-max-ms")
	}
}

// --- transport microbenches ----------------------------------------------

// BenchmarkSimRDMARead measures the simulator's cost of executing one
// full RDMA read (host-side wall time per simulated op).
func BenchmarkSimRDMARead(b *testing.B) {
	eng := sim.NewEngine(1)
	fab := simnet.NewFabric(eng, simnet.Defaults())
	front := simos.NewNode(eng, 0, simos.NodeDefaults())
	fnic := fab.Attach(front)
	backend := simos.NewNode(eng, 1, simos.NodeDefaults())
	bnic := fab.Attach(backend)
	agent := core.StartAgent(backend, bnic, core.AgentConfig{Scheme: core.RDMASync})
	done := 0
	front.Spawn("bench", func(tk *simos.Task) {
		var loop func()
		loop = func() {
			fnic.RDMARead(tk, 1, agent.RKey(), wire.RecordSize, func([]byte, error) {
				done++
				loop()
			})
		}
		loop()
	})
	b.ResetTimer()
	target := b.N
	for done < target {
		eng.RunFor(10 * sim.Millisecond)
	}
}

// BenchmarkSimClusterSecond measures wall time per simulated second of
// a loaded 8-node RUBiS cluster (simulator throughput).
func BenchmarkSimClusterSecond(b *testing.B) {
	d := experiments.Options{Quick: true, Sequential: true}
	_ = d
	for i := 0; i < b.N; i++ {
		experiments.Fig4(experiments.Options{Quick: true, Sequential: true})
	}
}
