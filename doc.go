// Package rdmamon reproduces "Exploiting RDMA operations for Providing
// Efficient Fine-Grained Resource Monitoring in Cluster-based Servers"
// (Vaidyanathan, Jin, Panda — IEEE CLUSTER 2006) as a Go library.
//
// The paper's contribution — pulling back-end load records with
// one-sided RDMA reads so that monitoring stays fast, accurate and
// invisible even when servers are saturated — is implemented twice:
//
//   - over a deterministic discrete-event cluster simulator (the
//     internal/sim* packages), which reproduces every table and figure
//     of the paper's evaluation (internal/experiments, cmd/rmbench);
//   - over real TCP with real /proc sampling (internal/tcpverbs,
//     internal/livemon, cmd/rmmon), usable on any Linux cluster.
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// simulation-for-hardware substitutions, and EXPERIMENTS.md for the
// paper-vs-measured comparison.
package rdmamon
