// Command rmbench regenerates the paper's tables and figures from the
// simulated cluster.
//
// Usage:
//
//	rmbench -exp fig3            # one experiment
//	rmbench -exp all             # everything (slow)
//	rmbench -list                # enumerate experiments
//	rmbench -exp fig7 -quick     # short run (noisier tails)
//	rmbench -exp fig9 -seed 7    # change the simulation seed
//	rmbench -exp scale -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"time"

	"rdmamon/internal/experiments"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		exp     = flag.String("exp", "", "experiment id (fig3..fig9, table1, extensions, or 'all')")
		scen    = flag.String("scenario", "", "run a declarative scenario file (YAML or JSON, see examples/scenarios/)")
		list    = flag.Bool("list", false, "list experiment ids")
		quick   = flag.Bool("quick", false, "short runs (noisier tails)")
		seed    = flag.Int64("seed", 0, "simulation seed (0 = default)")
		seeds   = flag.Int("seeds", 0, "random fault plans for -exp chaos/ha/aa (0 = default of 5)")
		seq     = flag.Bool("seq", false, "run sweep points sequentially")
		nback   = flag.Int("backends", 0, "pin -exp scale to one back-end count (0 = sweep)")
		shards  = flag.Int("shards", 0, "pin -exp scale to one shard count (0 = sweep)")
		batch   = flag.Int("batch", 0, "pin -exp scale to one doorbell batch size (0 = sweep)")
		pushTh  = flag.Float64("push-threshold", 0, "-exp hybrid: load-index delta that triggers a push (0 = default 0.05)")
		perMin  = flag.Int("period-min", 0, "-exp hybrid: fastest adaptive probe period, in probe periods T (0 = default 1)")
		perMax  = flag.Int("period-max", 0, "-exp hybrid: slowest adaptive probe period, in probe periods T (0 = default 64)")
		fronts  = flag.Int("frontends", 0, "-exp aa: active-active front-end replica count (0 = default 4)")
		claimT  = flag.Int("claim-ttl", 0, "-exp aa: claim TTL in ms (0 = derived from the poll interval)")
		claimS  = flag.Int("claim-shards", 0, "-exp aa: claim-table size (0 = one shard per back-end)")
		conns   = flag.Int("max-conns", 0, "-exp scale: pooled scale-out connection budget (0 = fleet/8)")
		dials   = flag.Int("dials-per-sec", 0, "-exp scale: pooled scale-out dial-rate budget (0 = fleet size)")
		poolGC  = flag.Int("pool-idle-ms", 0, "-exp scale: pooled scale-out idle-conn GC age in ms (0 = default 500)")
		format  = flag.String("format", "table", "output format: table, csv, plot")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
		memProf = flag.String("memprofile", "", "write a heap profile (after the runs) to this file")
		traceF  = flag.String("trace", "", "write a runtime execution trace of the runs to this file")
	)
	flag.Parse()

	if *list || (*exp == "" && *scen == "") {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-8s %s\n", id, experiments.Title(id))
		}
		if *exp == "" && *scen == "" && !*list {
			return 2
		}
		return 0
	}

	stopProfiling, err := startProfiling(*cpuProf, *memProf, *traceF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmbench:", err)
		return 1
	}
	defer stopProfiling()

	var ids []string
	switch *exp {
	case "":
	case "all":
		ids = experiments.IDs()
	default:
		ids = []string{*exp}
	}
	opts := experiments.Options{
		Seed: *seed, Quick: *quick, Sequential: *seq, Seeds: *seeds,
		Backends: *nback, Shards: *shards, Batch: *batch,
		PushThreshold: *pushTh, PeriodMin: *perMin, PeriodMax: *perMax,
		FrontEnds: *fronts, ClaimShards: *claimS, ClaimTTLMS: *claimT,
		MaxConns: *conns, DialsPerSec: *dials, PoolIdleMS: *poolGC,
	}
	failed := false
	emit := func(res *experiments.Result, start time.Time) {
		switch *format {
		case "csv":
			res.RenderCSV(os.Stdout)
		case "plot":
			res.RenderPlot(os.Stdout)
		default:
			res.Render(os.Stdout)
		}
		fmt.Printf("  (%.1fs wall)\n\n", time.Since(start).Seconds())
		failed = failed || res.Failed
	}
	if *scen != "" {
		start := time.Now()
		res, err := experiments.RunScenarioFile(*scen, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmbench:", err)
			return 1
		}
		emit(res, start)
	}
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmbench:", err)
			return 1
		}
		emit(res, start)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "rmbench: assertion or invariant violations (see notes above)")
		return 1
	}
	return 0
}

// startProfiling arms the requested runtime profilers and returns the
// teardown that flushes them; main routes every exit through it so a
// profile is never truncated by an early return.
func startProfiling(cpu, mem, traceFile string) (stop func(), err error) {
	var stops []func()
	stop = func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return stop, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return stop, err
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			stop()
			return func() {}, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			stop()
			return func() {}, err
		}
		stops = append(stops, func() {
			trace.Stop()
			f.Close()
		})
	}
	if mem != "" {
		f, err := os.Create(mem)
		if err != nil {
			stop()
			return func() {}, err
		}
		stops = append(stops, func() {
			runtime.GC() // settle the heap so the profile shows retained allocations
			if werr := pprof.Lookup("heap").WriteTo(f, 0); werr != nil {
				fmt.Fprintln(os.Stderr, "rmbench: heap profile:", werr)
			}
			f.Close()
		})
	}
	return stop, nil
}
