package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runWith invokes run() with a fresh flag set and argv, restoring the
// globals afterwards.
func runWith(t *testing.T, args ...string) int {
	t.Helper()
	oldArgs, oldFlags := os.Args, flag.CommandLine
	defer func() { os.Args, flag.CommandLine = oldArgs, oldFlags }()
	flag.CommandLine = flag.NewFlagSet("rmbench", flag.ContinueOnError)
	os.Args = append([]string{"rmbench"}, args...)
	return run()
}

const tinyScenario = `name: exit-probe
horizon: 1s
fleet:
  backends: 2
workload:
  kind: rubis
  clients: 4
  think: 20ms
assertions:
  - metric: served
    min: %MIN%
`

func writeScenario(t *testing.T, min string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "s.yaml")
	data := []byte(strings.ReplaceAll(tinyScenario, "%MIN%", min))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestScenarioExitCodes: a failing assertion must propagate a non-zero
// exit from rmbench (CI gates on it), and a passing one must not.
func TestScenarioExitCodes(t *testing.T) {
	if got := runWith(t, "-scenario", writeScenario(t, "10")); got != 0 {
		t.Fatalf("passing scenario exited %d, want 0", got)
	}
	if got := runWith(t, "-scenario", writeScenario(t, "1000000000")); got != 1 {
		t.Fatalf("failing scenario exited %d, want 1", got)
	}
}

// TestScenarioBadFileExit: unreadable or invalid scenario files are a
// hard error, not a silent success.
func TestScenarioBadFileExit(t *testing.T) {
	if got := runWith(t, "-scenario", filepath.Join(t.TempDir(), "missing.yaml")); got != 1 {
		t.Fatalf("missing file exited %d, want 1", got)
	}
	bad := filepath.Join(t.TempDir(), "bad.yaml")
	if err := os.WriteFile(bad, []byte("name: x\nhorizon: banana\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := runWith(t, "-scenario", bad); got != 1 {
		t.Fatalf("invalid file exited %d, want 1", got)
	}
}
