// Command rmtrace generates workload traces (RUBiS query streams and
// Zipf document traces) as CSV on stdout, for inspection or for
// feeding external tools.
//
// Usage:
//
//	rmtrace -kind rubis -n 1000 -seed 1
//	rmtrace -kind zipf -n 1000 -alpha 0.5 -docs 5000
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"rdmamon/internal/sim"
	"rdmamon/internal/workload"
)

func main() {
	var (
		kind  = flag.String("kind", "rubis", "trace kind: rubis or zipf")
		n     = flag.Int("n", 1000, "number of requests")
		seed  = flag.Int64("seed", 1, "random seed")
		alpha = flag.Float64("alpha", 0.5, "zipf exponent")
		docs  = flag.Int("docs", 5000, "zipf document population")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))
	switch *kind {
	case "rubis":
		mix := workload.NewMix(workload.RUBiSMix())
		fmt.Println("id,class,cpu_us,io_us,req_bytes,resp_bytes")
		for i := 0; i < *n; i++ {
			req := mix.Pick(rng).RequestVar(rng, uint64(i), -1, 0)
			fmt.Printf("%d,%s,%d,%d,%d,%d\n", i, req.Class,
				req.CPU/sim.Microsecond, req.IOWait/sim.Microsecond, req.Size, req.Resp)
		}
	case "zipf":
		z := workload.NewZipfTrace(*docs, *alpha, *seed)
		fmt.Println("id,doc,size_bytes,cached,cpu_us,io_us")
		for i := 0; i < *n; i++ {
			doc := z.SampleDoc(rng)
			req := z.RequestFor(doc, uint64(i), -1, 0)
			fmt.Printf("%d,%d,%d,%t,%d,%d\n", i, doc, z.Size(doc), z.Cached(doc),
				req.CPU/sim.Microsecond, req.IOWait/sim.Microsecond)
		}
	default:
		fmt.Fprintf(os.Stderr, "rmtrace: unknown kind %q\n", *kind)
		os.Exit(2)
	}
}
