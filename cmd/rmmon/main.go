// Command rmmon runs the live (real-network) monitoring system: an
// agent that exposes this machine's load over the TCP verbs emulation,
// and a probe that polls agents and prints their load records.
//
// Usage:
//
//	rmmon agent -scheme rdma-sync -listen :9377
//	rmmon probe -scheme rdma-sync -targets host1:9377,host2:9377 -interval 50ms
//	rmmon once  -target host1:9377
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rdmamon/internal/core"
	"rdmamon/internal/livemon"
	"rdmamon/internal/sim"
	"rdmamon/internal/wire"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "agent":
		runAgent(os.Args[2:])
	case "probe":
		runProbe(os.Args[2:])
	case "once":
		runOnce(os.Args[2:])
	case "pushhost":
		runPushHost(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `rmmon — live fine-grained resource monitoring

subcommands:
  agent    -scheme <name> -listen <addr> -node <id> [-interval <dur>] [-history k] [-mr-flap <dur>] [-host-lease]
           [-host-claims <shards>] [-push-to <addr> [-push-threshold x] [-push-heartbeat <dur>]]
  probe    -scheme <name> -targets <addr,...> [-interval <dur>] [-count n] [-failover]
           [-burst k] [-history] [-lease <replica-id> [-witness <addr>]]
           [-claim <fe-id> [-claim-owners n] [-witness <addr>]]
           [-period-max <dur> [-push-threshold x]]
  once     -target <addr>
  pushhost -listen <addr> -nodes <id,...> [-count n]

schemes: socket-async, socket-sync, rdma-async, rdma-sync, e-rdma-sync`)
}

func mustScheme(name string) core.Scheme {
	s, err := core.ParseScheme(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmmon:", err)
		os.Exit(2)
	}
	return s
}

func runAgent(args []string) {
	fs := flag.NewFlagSet("agent", flag.ExitOnError)
	scheme := fs.String("scheme", "rdma-sync", "monitoring scheme")
	listen := fs.String("listen", ":9377", "listen address")
	node := fs.Int("node", 0, "node id reported in records")
	interval := fs.Duration("interval", 50*time.Millisecond, "async refresh period")
	history := fs.Int("history", 0, "RDMA schemes: publish a k-slot history ring instead of a single record (one read fetches the last k samples)")
	mrFlap := fs.Duration("mr-flap", 0, "chaos: invalidate the RDMA region every interval, re-pinning after 1/4 of it")
	hostLease := fs.Bool("host-lease", false, "witness role: host the front-end lease word for one-sided CAS")
	hostClaims := fs.Int("host-claims", 0, "witness role: host an n-shard active-active claim table for one-sided CAS")
	pushTo := fs.String("push-to", "", "hybrid scheme: RDMA-Write delta records to this push host")
	pushTh := fs.Float64("push-threshold", 0, "hybrid scheme: load-index delta that triggers a push (0 = default 0.05)")
	pushHB := fs.Duration("push-heartbeat", 0, "hybrid scheme: max silence before a forced push (0 = default 16x check)")
	fs.Parse(args)

	var push *livemon.PusherConfig
	if *pushTo != "" {
		push = &livemon.PusherConfig{
			Target: *pushTo, Threshold: *pushTh,
			Check: *interval, Heartbeat: *pushHB,
		}
	}
	a, err := livemon.StartAgent(livemon.Config{
		Scheme:     mustScheme(*scheme),
		Addr:       *listen,
		NodeID:     uint16(*node),
		Interval:   *interval,
		HistoryK:   *history,
		HostLease:  *hostLease,
		HostClaims: *hostClaims,
		Push:       push,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmmon agent:", err)
		os.Exit(1)
	}
	ringNote := ""
	if a.RingK() > 0 {
		ringNote = fmt.Sprintf(" history=%d", a.RingK())
	}
	fmt.Printf("rmmon agent: scheme=%s listening on %s (node %d)%s\n",
		a.Scheme(), a.Addr(), *node, ringNote)
	if *mrFlap > 0 {
		go func() {
			for range time.Tick(*mrFlap) {
				a.InvalidateMR(*mrFlap / 4)
			}
		}()
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	a.Close()
}

func runProbe(args []string) {
	fs := flag.NewFlagSet("probe", flag.ExitOnError)
	targets := fs.String("targets", "", "comma-separated agent addresses")
	interval := fs.Duration("interval", 50*time.Millisecond, "poll interval")
	count := fs.Int("count", 0, "number of polling cycles (0 = forever)")
	failover := fs.Bool("failover", false, "arm the RDMA->socket transport breaker (RDMA schemes)")
	burst := fs.Int("burst", 1, "pipelined reads per probe cycle (RDMA schemes): k distinct samples in ~one round trip")
	history := fs.Bool("history", false, "fetch each ring-publishing agent's full history window per cycle and report its load trend")
	leaseID := fs.Int("lease", 0, "front-end replica id (1-based): contend for the dispatch lease hosted by the witness in -witness")
	claimID := fs.Int("claim", 0, "front-end replica id (1-based): contend for the active-active claim table hosted by the witness in -witness")
	claimOwners := fs.Int("claim-owners", 0, "front-end ring size for the home-shard mapping (0 = no home preference)")
	witness := fs.String("witness", "", "witness agent address hosting the lease word or claim table (default: first target)")
	periodMax := fs.Duration("period-max", 0, "adaptive polling: decay quiet targets' poll period up to this ceiling (0 = fixed period)")
	pushTh := fs.Float64("push-threshold", 0, "adaptive polling: load-index delta that counts as change (0 = default 0.05)")
	fs.Parse(args)
	if *targets == "" {
		fmt.Fprintln(os.Stderr, "rmmon probe: -targets required")
		os.Exit(2)
	}
	addrs := strings.Split(*targets, ",")
	probes := make([]*livemon.Probe, 0, len(addrs))
	for _, addr := range addrs {
		p, err := livemon.Dial(strings.TrimSpace(addr))
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmmon probe: %s: %v\n", addr, err)
			os.Exit(1)
		}
		defer p.Close()
		if *failover {
			p.SetFailover(core.FailoverConfig{})
		}
		probes = append(probes, p)
	}
	var lease *livemon.LeaseClient
	if *leaseID > 0 {
		waddr := strings.TrimSpace(*witness)
		if waddr == "" {
			waddr = strings.TrimSpace(addrs[0])
		}
		lc, err := livemon.DialLease(waddr, uint16(*leaseID), core.LeaseConfig{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmmon probe: lease witness %s: %v\n", waddr, err)
			os.Exit(1)
		}
		defer lc.Close()
		lease = lc
	}
	var claims *livemon.ClaimClient
	if *claimID > 0 {
		waddr := strings.TrimSpace(*witness)
		if waddr == "" {
			waddr = strings.TrimSpace(addrs[0])
		}
		cc, err := livemon.DialClaims(waddr, uint16(*claimID), *claimOwners, core.ClaimConfig{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmmon probe: claim witness %s: %v\n", waddr, err)
			os.Exit(1)
		}
		defer cc.Close()
		claims = cc
	}
	w := core.DefaultWeights()
	// Adaptive polling state (-period-max): per-target controller, last
	// observed record and next-due instant.
	threshold := *pushTh
	if threshold <= 0 {
		threshold = 0.05
	}
	ctrls := make([]*core.PeriodController, len(probes))
	obs := make([]wire.LoadRecord, len(probes))
	obsHas := make([]bool, len(probes))
	due := make([]time.Time, len(probes))
	trends := make([]core.TrendTracker, len(probes))
	if *periodMax > 0 {
		for i := range ctrls {
			ctrls[i] = &core.PeriodController{Cfg: core.PeriodConfig{
				Min: sim.Time(*interval), Max: sim.Time(*periodMax),
			}}
		}
	}
	observe := func(i int, rec wire.LoadRecord, err error) {
		if ctrls[i] == nil {
			return
		}
		changed := err != nil || !obsHas[i] || core.LoadDelta(rec, obs[i]) >= threshold
		if err == nil {
			obs[i] = rec
			obsHas[i] = true
		}
		held := lease == nil || lease.Valid()
		if claims != nil {
			held = claims.HeldValid() > 0
		}
		due[i] = time.Now().Add(time.Duration(ctrls[i].Observe(changed, core.Healthy, held)))
	}
	for cycle := 0; *count == 0 || cycle < *count; cycle++ {
		start := time.Now()
		if lease != nil {
			tk, rn, dp := lease.Counters()
			fmt.Printf("lease: role=%s epoch=%d valid=%v takeovers=%d renewals=%d deposals=%d\n",
				lease.Role(), lease.Epoch(), lease.Valid(), tk, rn, dp)
		}
		if claims != nil {
			tk, rn, dp, hb := claims.Counters()
			_, _, fenced := claims.Errors()
			fmt.Printf("claims: held=%d/%d takeovers=%d renewals=%d deposals=%d handbacks=%d fenced=%d\n",
				claims.HeldValid(), claims.Shards(), tk, rn, dp, hb, fenced)
		}
		for i, p := range probes {
			if ctrls[i] != nil && time.Now().Before(due[i]) {
				continue
			}
			if *history && p.RingK() > 0 {
				v, err := p.FetchHistory()
				if err != nil {
					fmt.Printf("%-22s ERROR %v\n", addrs[i], err)
					continue
				}
				trends[i].ObserveRing(&v)
				tag := " hist"
				if s, ok := trends[i].Slope(); ok {
					tag = fmt.Sprintf(" hist slope=%+.3f/s", s)
				}
				printRecord(addrs[i], v.Newest(), w.Index(v.Newest()), time.Since(start), tag)
				continue
			}
			if *burst > 1 && p.Scheme().UsesRDMA() {
				recs, err := p.FetchBurst(*burst)
				if err != nil {
					fmt.Printf("%-22s ERROR %v\n", addrs[i], err)
					continue
				}
				for _, rec := range recs {
					printRecord(addrs[i], rec, w.Index(rec), time.Since(start), " burst")
				}
				continue
			}
			rec, tr, err := p.FetchVia()
			observe(i, rec, err)
			if err != nil {
				fmt.Printf("%-22s ERROR %v\n", addrs[i], err)
				continue
			}
			via := ""
			if p.Failover() != nil {
				via = " via=" + tr.String()
			}
			printRecord(addrs[i], rec, w.Index(rec), time.Since(start), via)
		}
		time.Sleep(*interval)
	}
}

func runPushHost(args []string) {
	fs := flag.NewFlagSet("pushhost", flag.ExitOnError)
	listen := fs.String("listen", ":9378", "listen address")
	nodes := fs.String("nodes", "", "comma-separated back-end node ids to host slots for")
	count := fs.Int("count", 0, "number of 1s status lines to print (0 = forever)")
	fs.Parse(args)
	if *nodes == "" {
		fmt.Fprintln(os.Stderr, "rmmon pushhost: -nodes required")
		os.Exit(2)
	}
	var ids []uint16
	for _, f := range strings.Split(*nodes, ",") {
		var id int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &id); err != nil {
			fmt.Fprintf(os.Stderr, "rmmon pushhost: bad node id %q\n", f)
			os.Exit(2)
		}
		ids = append(ids, uint16(id))
	}
	h, err := livemon.StartPushHost(*listen, ids)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmmon pushhost:", err)
		os.Exit(1)
	}
	defer h.Close()
	fmt.Printf("rmmon pushhost: listening on %s, slots for nodes %v\n", h.Addr(), ids)
	w := core.DefaultWeights()
	for cycle := 0; *count == 0 || cycle < *count; cycle++ {
		time.Sleep(time.Second)
		rx, torn := h.Stats()
		fmt.Printf("pushes=%d torn=%d\n", rx, torn)
		for _, id := range ids {
			rec, at, ok := h.Latest(id)
			if !ok {
				fmt.Printf("  node %-5d (no pushes yet)\n", id)
				continue
			}
			printRecord(fmt.Sprintf("node %d", id), rec.Load, w.Index(rec.Load),
				time.Since(at).Round(time.Millisecond), " pushed")
		}
	}
}

func runOnce(args []string) {
	fs := flag.NewFlagSet("once", flag.ExitOnError)
	target := fs.String("target", "127.0.0.1:9377", "agent address")
	fs.Parse(args)
	p, err := livemon.Dial(*target)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmmon once:", err)
		os.Exit(1)
	}
	defer p.Close()
	start := time.Now()
	rec, err := p.Fetch()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmmon once:", err)
		os.Exit(1)
	}
	printRecord(*target, rec, core.DefaultWeights().Index(rec), time.Since(start), "")
}

func printRecord(addr string, r wire.LoadRecord, index float64, rtt time.Duration, extra string) {
	fmt.Printf("%-22s node=%d seq=%-6d util=%3d%% run=%-3d tasks=%-4d mem=%3.0f%% conns=%-3d index=%.3f rtt=%s%s\n",
		addr, r.NodeID, r.Seq, r.UtilMean()/10, r.NrRunning, r.NrTasks,
		r.MemFraction()*100, r.Conns, index, rtt.Round(time.Microsecond), extra)
}
