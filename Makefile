# Repo-local CI. `make ci` is the gate a change must pass before it
# lands: vet, build, the full suite under the race detector with
# shuffled test order, a short smoke run of every fuzzer, and
# chaos/HA-harness smokes across a few random fault plans.

GO      ?= go
FUZZTIME ?= 10s

.PHONY: ci vet build test race fuzz chaos-smoke ha-smoke aa-smoke hybrid-smoke churn-smoke scenario-smoke bench bench-baseline bench-check clean

ci: vet build race bench-check fuzz chaos-smoke ha-smoke aa-smoke hybrid-smoke churn-smoke scenario-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Fast pass: no race detector, slow experiments skipped.
test:
	$(GO) test -short ./...

# The real gate: race detector on, test order shuffled so hidden
# inter-test ordering dependencies surface instead of calcifying.
# Includes the livemon goroutine/fd leak checks and the pool
# connection-churn test, so leaks and teardown races fail here.
race:
	$(GO) test -race -shuffle=on ./...

# Smoke-run each fuzzer for $(FUZZTIME). Native Go fuzzing allows one
# -fuzz target per invocation, hence one line per fuzzer.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzLoadRecord$$ -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -run=^$$ -fuzz=FuzzLoadRecordFields -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -run=^$$ -fuzz=FuzzReadFrame -fuzztime=$(FUZZTIME) ./internal/tcpverbs
	$(GO) test -run=^$$ -fuzz=FuzzServeFrame -fuzztime=$(FUZZTIME) ./internal/tcpverbs
	$(GO) test -run=^$$ -fuzz=FuzzReadBatch -fuzztime=$(FUZZTIME) ./internal/tcpverbs
	$(GO) test -run=^$$ -fuzz=FuzzProcfsParsers -fuzztime=$(FUZZTIME) ./internal/procfs
	$(GO) test -run=^$$ -fuzz=FuzzLeaseRecord$$ -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -run=^$$ -fuzz=FuzzPushRecord$$ -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -run=^$$ -fuzz=FuzzHistoryRing$$ -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -run=^$$ -fuzz=FuzzClaimRecord$$ -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -run=^$$ -fuzz=FuzzScenario$$ -fuzztime=$(FUZZTIME) ./internal/scenario

# Randomized failover chaos: three seeded fault plans, invariants
# asserted, non-zero exit on any violation.
chaos-smoke:
	$(GO) run ./cmd/rmbench -exp chaos -quick -seeds 3

# Front-end HA under front-end crash/freeze/partition plans: lease
# safety (no split-brain), epoch fencing and bounded takeover asserted,
# non-zero exit on any violation.
ha-smoke:
	$(GO) run ./cmd/rmbench -exp ha -quick -seeds 3

# Active-active dispatch under a claim-stall fault plan: zero
# double-dispatch, bounded orphan reclamation, >= 2x single-primary
# throughput and per-front-end fairness asserted, non-zero exit on
# any violation.
aa-smoke:
	$(GO) run ./cmd/rmbench -exp aa -quick -seeds 1

# Hybrid push/pull contract: >= 10x fewer probe WRs than all-pull at
# the same effective-staleness bound, non-zero exit on any violation.
hybrid-smoke:
	$(GO) run ./cmd/rmbench -exp hybrid -quick

# Connection-lifecycle smoke: the pooled scale-out at 1024 back-ends
# (quick phases) through crash/restart churn, a dial storm and an fd
# clamp — asserts zero stale-epoch reads, epoch-fence replay, dial
# rate within budget and leak-free teardown, non-zero exit on any
# violation.
churn-smoke:
	$(GO) run ./cmd/rmbench -exp scale -backends 1024 -quick

# Declarative scenario DSL smoke: the quickest curated scenario end to
# end through rmbench (non-zero exit if its assertions fail) plus the
# chaos-equivalence golden tests pinning that scenario-compiled plans
# stay bit-identical to the legacy Go-coded chaos/ha experiments.
scenario-smoke:
	$(GO) run ./cmd/rmbench -scenario examples/scenarios/quickstart.yaml
	$(GO) test -run 'TestChaosScenarioPlanEquivalence|TestHAScenarioPlanEquivalence|TestScenarioGoldenDigests' -count=1 ./internal/scenario

# One-command reproduction pass over the paper's tables and figures.
# -benchmem surfaces allocs/op and B/op next to the sim-derived
# metrics (the steady-sweep figures are also reported explicitly).
bench:
	$(GO) test -bench . -benchtime 1x -benchmem

# Probe-engine regression gates: replay the deterministic 256-backend
# scale point and the 512-backend hybrid comparison, failing on >15%
# regression vs the committed baselines (sim figures AND steady-state
# sweep allocs/op + B/op; the probe data path is asserted to allocate
# exactly zero).
bench-check:
	$(GO) test -run 'TestBenchScaleRegression|TestBenchHybridRegression' .

# Regenerate BENCH_scale.json / BENCH_hybrid.json after an intentional
# cost-model change (commit the result).
bench-baseline:
	BENCH_WRITE=1 $(GO) test -run 'TestBenchScaleRegression|TestBenchHybridRegression' .

clean:
	$(GO) clean -testcache
