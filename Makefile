# Repo-local CI. `make ci` is the gate a change must pass before it
# lands: vet, build, the full suite under the race detector with
# shuffled test order, and a short smoke run of every fuzzer.

GO      ?= go
FUZZTIME ?= 10s

.PHONY: ci vet build test race fuzz bench clean

ci: vet build race fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Fast pass: no race detector, slow experiments skipped.
test:
	$(GO) test -short ./...

# The real gate: race detector on, test order shuffled so hidden
# inter-test ordering dependencies surface instead of calcifying.
race:
	$(GO) test -race -shuffle=on ./...

# Smoke-run each fuzzer for $(FUZZTIME). Native Go fuzzing allows one
# -fuzz target per invocation, hence one line per fuzzer.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzLoadRecord$$ -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -run=^$$ -fuzz=FuzzLoadRecordFields -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -run=^$$ -fuzz=FuzzReadFrame -fuzztime=$(FUZZTIME) ./internal/tcpverbs
	$(GO) test -run=^$$ -fuzz=FuzzServeFrame -fuzztime=$(FUZZTIME) ./internal/tcpverbs

# One-command reproduction pass over the paper's tables and figures.
bench:
	$(GO) test -bench . -benchtime 1x

clean:
	$(GO) clean -testcache
