// Benchmark and regression gate for the batched/sharded probe engine
// (DESIGN.md §10). `make bench-check` replays the gate configuration
// and fails on a >15% regression against the committed
// BENCH_scale.json; `make bench-baseline` regenerates that file after
// an intentional cost-model change.
package rdmamon_test

import (
	"encoding/json"
	"os"
	"testing"

	"rdmamon/internal/experiments"
)

const benchBaselineFile = "BENCH_scale.json"

type scaleBaseline struct {
	Backends   int     `json:"backends"`
	Shards     int     `json:"shards"`
	Batch      int     `json:"batch"`
	CycleP50Us float64 `json:"cycle_p50_us"`
	ProbeP99Us float64 `json:"probe_p99_us"`
	Speedup    float64 `json:"speedup_vs_sequential"`
}

// benchScalePoint runs the gate configuration — 256 back-ends, 4
// shards, doorbell batch 32 — plus its sequential baseline (for the
// speedup figure). The simulation is deterministic, so the figures are
// exactly reproducible; the 15% tolerance only absorbs intentional
// small cost-model adjustments.
func benchScalePoint() scaleBaseline {
	d := experiments.Scale(experiments.Options{Backends: 256, Shards: 4, Batch: 32})
	p := d.Points[len(d.Points)-1]
	return scaleBaseline{
		Backends: p.Backends, Shards: p.Shards, Batch: p.Batch,
		CycleP50Us: p.CycleP50Us, ProbeP99Us: p.ProbeP99Us, Speedup: p.Speedup,
	}
}

// BenchmarkScale256 reports the probe engine's headline figures at the
// gate configuration: sweep time and p99 probe latency at 256
// back-ends, and the speedup over the sequential monitor.
func BenchmarkScale256(b *testing.B) {
	var p scaleBaseline
	for i := 0; i < b.N; i++ {
		p = benchScalePoint()
	}
	b.ReportMetric(p.CycleP50Us/1000, "sim-cycle-p50-ms")
	b.ReportMetric(p.ProbeP99Us, "sim-probe-p99-us")
	b.ReportMetric(p.Speedup, "speedup-x")
}

// TestBenchScaleRegression is the bench-check gate. With BENCH_WRITE=1
// it rewrites the baseline instead (the bench-baseline target).
func TestBenchScaleRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("slow benchmark gate; skipped with -short")
	}
	got := benchScalePoint()
	if os.Getenv("BENCH_WRITE") == "1" {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(benchBaselineFile, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline rewritten: %+v", got)
		return
	}
	raw, err := os.ReadFile(benchBaselineFile)
	if err != nil {
		t.Fatalf("no committed baseline (run `make bench-baseline` and commit it): %v", err)
	}
	var want scaleBaseline
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("corrupt %s: %v", benchBaselineFile, err)
	}
	if got.Backends != want.Backends || got.Shards != want.Shards || got.Batch != want.Batch {
		t.Fatalf("gate configuration drifted: measured %+v, baseline %+v", got, want)
	}
	const tol = 1.15
	worse := func(name string, got, base float64) {
		if got > base*tol {
			t.Errorf("%s regressed: %.1f vs baseline %.1f (>%.0f%% worse)", name, got, base, (tol-1)*100)
		}
	}
	worse("cycle p50 us", got.CycleP50Us, want.CycleP50Us)
	worse("probe p99 us", got.ProbeP99Us, want.ProbeP99Us)
	if got.Speedup*tol < want.Speedup {
		t.Errorf("speedup regressed: %.1fx vs baseline %.1fx", got.Speedup, want.Speedup)
	}
}
