// Benchmark and regression gate for the batched/sharded probe engine
// (DESIGN.md §10). `make bench-check` replays the gate configuration
// and fails on a >15% regression against the committed
// BENCH_scale.json; `make bench-baseline` regenerates that file after
// an intentional cost-model change.
package rdmamon_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"rdmamon/internal/cluster"
	"rdmamon/internal/core"
	"rdmamon/internal/experiments"
	"rdmamon/internal/sim"
	"rdmamon/internal/wire"
)

const benchBaselineFile = "BENCH_scale.json"

type scaleBaseline struct {
	Backends   int     `json:"backends"`
	Shards     int     `json:"shards"`
	Batch      int     `json:"batch"`
	CycleP50Us float64 `json:"cycle_p50_us"`
	ProbeP99Us float64 `json:"probe_p99_us"`
	Speedup    float64 `json:"speedup_vs_sequential"`

	// Steady-state sweep cost per posted one-sided read, measured over
	// a one-second window of the warmed gate fleet. The figure includes
	// the discrete-event simulator's own scheduling (closures, event
	// nodes), so it is gated at tolerance like ns/op; the probe DATA
	// path — buffers, decode, trend fold — is separately asserted to be
	// allocation-free (see benchProbeHotPathAllocs).
	SweepAllocsPerOp float64 `json:"sweep_allocs_per_op"`
	SweepBytesPerOp  float64 `json:"sweep_b_per_op"`
}

// pooledBaseline pins the pooled scale-out at 1024 back-ends: how much
// dialing, shedding and hot staleness the connection-lifecycle layer
// costs to hold a fleet on a conns/dial-rate budget. The run is
// deterministic; the gate's 15% tolerance only absorbs intentional
// cost-model changes.
type pooledBaseline struct {
	Backends     int     `json:"backends"`
	MaxConns     int     `json:"max_conns"`
	DialsPerSec  int     `json:"dials_per_sec"`
	DialsTotal   uint64  `json:"dials_total"`
	ShedTotal    uint64  `json:"shed_total"`
	HotStaleMaxT float64 `json:"hot_stale_max_t"`
}

// benchBaselines is the committed BENCH_scale.json shape: the sweep
// gate point plus the pooled 1024-back-end point.
type benchBaselines struct {
	Gate   scaleBaseline  `json:"gate"`
	Pooled pooledBaseline `json:"pooled_1024"`
}

// benchScalePoint runs the gate configuration — 256 back-ends, 4
// shards, doorbell batch 32 — plus its sequential baseline (for the
// speedup figure). The simulation is deterministic, so the figures are
// exactly reproducible; the 15% tolerance only absorbs intentional
// small cost-model adjustments.
func benchScalePoint() scaleBaseline {
	d := experiments.Scale(experiments.Options{Backends: 256, Shards: 4, Batch: 32})
	p := d.Points[len(d.Points)-1]
	return scaleBaseline{
		Backends: p.Backends, Shards: p.Shards, Batch: p.Batch,
		CycleP50Us: p.CycleP50Us, ProbeP99Us: p.ProbeP99Us, Speedup: p.Speedup,
	}
}

// benchScalePooled runs the pooled scale-out at 1024 back-ends with
// default budgets (conns = fleet/8, dials/s = fleet) and folds the run
// into the baseline scalars.
func benchScalePooled() (pooledBaseline, *experiments.ScaleOutData) {
	d := experiments.Scale(experiments.Options{Backends: 1024})
	out := d.Out
	p := pooledBaseline{
		Backends: out.Backends, MaxConns: out.MaxConns, DialsPerSec: out.DialsPerSec,
	}
	for _, ph := range out.Phases {
		p.DialsTotal += ph.Dials
		p.ShedTotal += ph.Sheds
		if ph.HotAgeMaxT > p.HotStaleMaxT {
			p.HotStaleMaxT = ph.HotAgeMaxT
		}
	}
	return p, out
}

// benchSweepAllocs measures the warmed gate fleet's steady-state
// allocation rate: mallocs and bytes per posted one-sided read over a
// one-second window. The sim engine runs entirely on this goroutine,
// so the MemStats delta is the sweep's own footprint. The two-second
// warmup carries the per-prober metric slices past the window's
// growth boundaries, leaving only amortized tails in the figure.
func benchSweepAllocs() (allocsPerOp, bytesPerOp float64) {
	c := cluster.New(cluster.Config{
		Backends: 256, Scheme: core.RDMASync, Poll: 10 * sim.Millisecond,
		Seed: 1, NoServers: true, MonitorShards: 4, MonitorBatch: 32,
	})
	c.Eng.RunUntil(2 * sim.Second)
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	reads0 := c.FNIC.RDMAReads
	c.Eng.RunUntil(3 * sim.Second)
	runtime.ReadMemStats(&m1)
	ops := c.FNIC.RDMAReads - reads0
	if ops == 0 {
		return 0, 0
	}
	return float64(m1.Mallocs-m0.Mallocs) / float64(ops),
		float64(m1.TotalAlloc-m0.TotalAlloc) / float64(ops)
}

// benchProbeHotPathAllocs measures the per-probe data path exactly as
// the steady sweep executes it — posted-buffer ring decode into the
// prober-owned view plus the trend fold — with the simulator's event
// plumbing factored out. The acceptance bar is exactly zero.
func benchProbeHotPathAllocs() float64 {
	ring := wire.NewHistoryRing(8, 1)
	for i := 0; i < 12; i++ {
		rec := wire.LoadRecord{NodeID: 1, Seq: uint32(i + 1), KTimeNS: int64(i+1) * 5e6, NrRunning: uint16(i)}
		ring.Push(&rec)
	}
	buf := make([]byte, ring.Size())
	copy(buf, ring.Bytes())
	point := make([]byte, wire.RecordSize)
	rec := wire.LoadRecord{NodeID: 1, Seq: 99, KTimeNS: 1e9}
	copy(point, rec.Encode())
	var view wire.RingView
	var tr core.TrendTracker
	var out wire.LoadRecord
	return testing.AllocsPerRun(200, func() {
		if err := wire.DecodeRingInto(&view, buf); err != nil {
			panic(err)
		}
		tr.ObserveRing(&view)
		if err := wire.DecodeInto(&out, point); err != nil {
			panic(err)
		}
	})
}

// BenchmarkScale256 reports the probe engine's headline figures at the
// gate configuration: sweep time and p99 probe latency at 256
// back-ends, and the speedup over the sequential monitor.
func BenchmarkScale256(b *testing.B) {
	var p scaleBaseline
	for i := 0; i < b.N; i++ {
		p = benchScalePoint()
		p.SweepAllocsPerOp, p.SweepBytesPerOp = benchSweepAllocs()
	}
	b.ReportMetric(p.CycleP50Us/1000, "sim-cycle-p50-ms")
	b.ReportMetric(p.ProbeP99Us, "sim-probe-p99-us")
	b.ReportMetric(p.Speedup, "speedup-x")
	b.ReportMetric(p.SweepAllocsPerOp, "sweep-allocs/op")
	b.ReportMetric(p.SweepBytesPerOp, "sweep-B/op")
}

// BenchmarkScale1024 reports the pooled transport's figures at 1024
// back-ends on a 128-conn budget: total dials, shed probe slots, and
// the worst hot effective staleness (in probe periods) across the
// churn, dial-storm and fd-clamp phases.
func BenchmarkScale1024(b *testing.B) {
	var p pooledBaseline
	for i := 0; i < b.N; i++ {
		p, _ = benchScalePooled()
	}
	b.ReportMetric(float64(p.DialsTotal), "dials")
	b.ReportMetric(float64(p.ShedTotal), "sheds")
	b.ReportMetric(p.HotStaleMaxT, "hot-stale-max-T")
}

// TestBenchScaleRegression is the bench-check gate. With BENCH_WRITE=1
// it rewrites the baseline instead (the bench-baseline target).
func TestBenchScaleRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("slow benchmark gate; skipped with -short")
	}
	got := benchScalePoint()
	gotPooled, out := benchScalePooled()
	if out.Failed {
		t.Fatalf("pooled 1024 point reported violations:\n%v", out.Notes)
	}
	if !raceEnabled {
		if hot := benchProbeHotPathAllocs(); hot != 0 {
			t.Errorf("probe hot path (ring decode + trend fold) allocates %.1f/op, want exactly 0", hot)
		}
		got.SweepAllocsPerOp, got.SweepBytesPerOp = benchSweepAllocs()
	}
	if os.Getenv("BENCH_WRITE") == "1" {
		if raceEnabled {
			t.Fatal("bench-baseline must run without -race: the allocs/op fields would record race-runtime noise")
		}
		buf, err := json.MarshalIndent(benchBaselines{Gate: got, Pooled: gotPooled}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(benchBaselineFile, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline rewritten: gate %+v, pooled %+v", got, gotPooled)
		return
	}
	raw, err := os.ReadFile(benchBaselineFile)
	if err != nil {
		t.Fatalf("no committed baseline (run `make bench-baseline` and commit it): %v", err)
	}
	var want benchBaselines
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("corrupt %s: %v", benchBaselineFile, err)
	}
	if got.Backends != want.Gate.Backends || got.Shards != want.Gate.Shards || got.Batch != want.Gate.Batch {
		t.Fatalf("gate configuration drifted: measured %+v, baseline %+v", got, want.Gate)
	}
	const tol = 1.15
	worse := func(name string, got, base float64) {
		if got > base*tol {
			t.Errorf("%s regressed: %.1f vs baseline %.1f (>%.0f%% worse)", name, got, base, (tol-1)*100)
		}
	}
	worse("cycle p50 us", got.CycleP50Us, want.Gate.CycleP50Us)
	worse("probe p99 us", got.ProbeP99Us, want.Gate.ProbeP99Us)
	if !raceEnabled {
		worse("sweep allocs/op", got.SweepAllocsPerOp, want.Gate.SweepAllocsPerOp)
		worse("sweep B/op", got.SweepBytesPerOp, want.Gate.SweepBytesPerOp)
	}
	if got.Speedup*tol < want.Gate.Speedup {
		t.Errorf("speedup regressed: %.1fx vs baseline %.1fx", got.Speedup, want.Gate.Speedup)
	}

	wp := want.Pooled
	if gotPooled.Backends != wp.Backends || gotPooled.MaxConns != wp.MaxConns ||
		gotPooled.DialsPerSec != wp.DialsPerSec {
		t.Fatalf("pooled configuration drifted: measured %+v, baseline %+v", gotPooled, wp)
	}
	worse("pooled dials", float64(gotPooled.DialsTotal), float64(wp.DialsTotal))
	worse("pooled sheds", float64(gotPooled.ShedTotal), float64(wp.ShedTotal))
	worse("pooled hot stale max T", gotPooled.HotStaleMaxT, wp.HotStaleMaxT)
}
