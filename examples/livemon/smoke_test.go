package main

import (
	"testing"
	"time"
)

// TestLivemonSmoke runs the live-mode example for real: one agent per
// scheme on loopback, 20 probes each. Wall-clock bound is generous —
// normal runs finish in well under a second — and exists to turn a
// hung probe (missing deadline, stuck handshake) into a test failure
// instead of a stalled CI job.
func TestLivemonSmoke(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		main()
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("livemon example did not finish within 15s")
	}
}
