// Live-mode example: run a real monitoring agent and probe over
// loopback TCP, sampling this machine's actual /proc (or a synthetic
// provider on non-Linux hosts). No simulation involved.
//
//	go run ./examples/livemon
package main

import (
	"fmt"
	"runtime"
	"time"

	"rdmamon/internal/core"
	"rdmamon/internal/livemon"
	"rdmamon/internal/procfs"
)

func provider() procfs.Provider {
	if runtime.GOOS == "linux" {
		p := procfs.NewLinux("")
		if _, err := p.Snapshot(); err == nil {
			return p
		}
	}
	syn := &procfs.Synthetic{}
	syn.Set(procfs.Snapshot{
		NumCPU: 2, NrRunning: 1, NrTasks: 50,
		UtilPerMille: []int{100, 50},
		MemUsedKB:    1 << 18, MemTotalKB: 1 << 20,
	})
	return syn
}

func main() {
	fmt.Println("live mode: one agent per scheme on loopback, real machine stats")
	fmt.Println()
	for _, scheme := range core.Schemes() {
		agent, err := livemon.StartAgent(livemon.Config{
			Scheme:   scheme,
			NodeID:   1,
			Provider: provider(),
			Interval: 20 * time.Millisecond,
		})
		if err != nil {
			fmt.Println(scheme, "agent error:", err)
			continue
		}
		probe, err := livemon.Dial(agent.Addr())
		if err != nil {
			fmt.Println(scheme, "dial error:", err)
			agent.Close()
			continue
		}
		// A few probes; report the last record and the mean round trip.
		var rtt time.Duration
		const probes = 20
		var rec = struct {
			util, run, tasks int
		}{}
		for i := 0; i < probes; i++ {
			start := time.Now()
			r, err := probe.Fetch()
			if err != nil {
				fmt.Println(scheme, "fetch error:", err)
				break
			}
			rtt += time.Since(start)
			rec.util, rec.run, rec.tasks = r.UtilMean()/10, int(r.NrRunning), int(r.NrTasks)
		}
		fmt.Printf("%-13s rtt=%-10s util=%3d%% runnable=%-3d tasks=%d\n",
			scheme, (rtt / probes).Round(time.Microsecond), rec.util, rec.run, rec.tasks)
		probe.Close()
		agent.Close()
	}
	fmt.Println()
	fmt.Println("The RDMA-style schemes are served by the transport's responder")
	fmt.Println("goroutine — the agent application never touches a probe.")
}
