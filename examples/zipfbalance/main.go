// Zipf balancing example: co-host an auction site and a static-content
// service (Zipf popularity) on the same 8 nodes — the paper's shared
// data-center scenario — and compare cluster throughput under
// Socket-Async vs RDMA-Sync monitoring across the Zipf exponent.
//
//	go run ./examples/zipfbalance
package main

import (
	"fmt"

	"rdmamon/internal/cluster"
	"rdmamon/internal/core"
	"rdmamon/internal/sim"
	"rdmamon/internal/workload"
)

func run(scheme core.Scheme, alpha float64) float64 {
	c := cluster.New(cluster.Config{
		Backends:    8,
		Scheme:      scheme,
		Seed:        1,
		Policy:      cluster.PolicyWebSphere,
		LocalWeight: -1,
		Gamma:       4,
	})
	c.StartTenantNoise(23)
	rubis := c.StartRUBiS(128, 30*sim.Millisecond, 11)
	z := workload.NewZipfTrace(5000, alpha, 13)
	zipf := c.StartZipf(z, 256, 20*sim.Millisecond, 17)
	c.Run(2 * sim.Second)
	rubis.ResetStats()
	zipf.ResetStats()
	c.Run(8 * sim.Second)
	return rubis.Throughput() + zipf.Throughput()
}

func main() {
	fmt.Println("RUBiS + Zipf static content co-hosted on 8 shared nodes")
	fmt.Println()
	fmt.Printf("%-7s %14s %14s %12s\n", "alpha", "Socket-Async", "RDMA-Sync", "improvement")
	for _, alpha := range []float64{0.25, 0.5, 0.75, 0.9} {
		base := run(core.SocketAsync, alpha)
		rdma := run(core.RDMASync, alpha)
		fmt.Printf("%-7.2f %12.0f/s %12.0f/s %+11.1f%%\n",
			alpha, base, rdma, (rdma-base)/base*100)
	}
	fmt.Println()
	fmt.Println("Lower alpha = more diverse documents = more divergent resource")
	fmt.Println("demands; that is where accurate fine-grained monitoring pays most.")
}
