package main

import (
	"testing"
	"time"
)

// TestQuickstartSmoke runs the example end to end. The simulation is
// virtual-time so the whole five-scheme sweep takes well under a
// second of wall clock; the watchdog catches a livelock regression.
func TestQuickstartSmoke(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		main()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("quickstart example did not finish within 10s")
	}
}
