// Quickstart: build a tiny simulated cluster, install each monitoring
// scheme on a loaded back-end and probe it from the front-end, printing
// what each scheme reports and what it costs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"rdmamon/internal/core"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/workload"
)

func main() {
	fmt.Println("rdmamon quickstart: probing a loaded back-end with each scheme")
	fmt.Println()
	fmt.Printf("%-13s %10s %10s %8s %8s %8s\n",
		"scheme", "probes", "mean(us)", "p99(us)", "run", "util%")
	for _, scheme := range core.Schemes() {
		eng := sim.NewEngine(1)
		fab := simnet.NewFabric(eng, simnet.Defaults())

		front := simos.NewNode(eng, 0, simos.NodeDefaults())
		fnic := fab.Attach(front)
		backend := simos.NewNode(eng, 1, simos.NodeDefaults())
		bnic := fab.Attach(backend)
		peer := simos.NewNode(eng, 2, simos.NodeDefaults())
		pnic := fab.Attach(peer)

		// Load the back-end with compute+communicate threads.
		workload.StartEchoServers(peer, pnic, 2)
		bg := workload.BackgroundDefaults()
		bg.Threads = 6
		bg.Peer = 2
		workload.StartBackground(backend, bnic, bg)

		// Back-end agent + front-end prober at T=50ms.
		agent := core.StartAgent(backend, bnic, core.AgentConfig{Scheme: scheme})
		prober := core.StartProber(front, fnic, agent, core.DefaultInterval)

		eng.RunUntil(3 * sim.Second)

		rec, _, ok := prober.Latest()
		if !ok {
			fmt.Printf("%-13s no record!\n", scheme)
			continue
		}
		fmt.Printf("%-13s %10d %10.1f %8.1f %8d %7d%%\n",
			scheme, prober.Latency.Count(),
			prober.Latency.Mean(), prober.Latency.Percentile(99),
			rec.NrRunning, rec.UtilMean()/10)
	}
	fmt.Println()
	fmt.Println("Note how the socket schemes' probe latency inflates under load")
	fmt.Println("while the RDMA schemes stay flat — the paper's core observation.")
}
