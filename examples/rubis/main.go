// RUBiS example: an 8-node auction site behind a WebSphere-style
// dispatcher, once per monitoring scheme, printing the response-time
// profile each scheme achieves (a small-scale Table 1).
//
//	go run ./examples/rubis
package main

import (
	"fmt"

	"rdmamon/internal/cluster"
	"rdmamon/internal/core"
	"rdmamon/internal/sim"
)

func main() {
	fmt.Println("RUBiS auction site, 8 back-ends, 256 clients, T=50ms")
	fmt.Println()
	fmt.Printf("%-13s %10s %10s %10s %10s %9s\n",
		"scheme", "completed", "mean(ms)", "p99(ms)", "max(ms)", "drops")
	for _, scheme := range core.Schemes() {
		c := cluster.New(cluster.Config{
			Backends:    8,
			Scheme:      scheme,
			Seed:        42,
			Policy:      cluster.PolicyWebSphere,
			LocalWeight: -1,
			Gamma:       4,
		})
		pool := c.StartRUBiS(256, 55*sim.Millisecond, 7)
		fc := c.StartFlashCrowds(1500*sim.Millisecond, 40, 80, 9)
		c.Run(2 * sim.Second) // warm up
		pool.ResetStats()
		fc.ResetStats()
		c.Run(10 * sim.Second)

		var drops uint64
		for _, nic := range c.BNICs {
			drops += nic.SockDrops
		}
		fmt.Printf("%-13s %10d %10.2f %10.1f %10.1f %9d\n",
			scheme, pool.Completed, pool.All.Mean(),
			pool.All.Percentile(99), pool.All.Max(), drops)
	}
	fmt.Println()
	fmt.Println("Kernel-direct monitoring (RDMA-Sync, e-RDMA-Sync) keeps the tail")
	fmt.Println("down: load records never go stale when a server gets hot.")
}
