// Admission-control example: the paper's §1 motivating use case. An
// overloaded cluster protects itself by rejecting requests when the
// monitored load index says every back-end is full — and the quality
// of that decision is exactly the quality of the monitoring.
//
//	go run ./examples/admission
package main

import (
	"fmt"

	"rdmamon/internal/admission"
	"rdmamon/internal/cluster"
	"rdmamon/internal/core"
	"rdmamon/internal/sim"
)

func main() {
	fmt.Println("admission control on an overloaded 4-node cluster (threshold 0.7)")
	fmt.Println()
	fmt.Printf("%-13s %10s %10s %12s %10s\n",
		"scheme", "admitted", "rejected", "goodput<100ms", "p99(ms)")
	for _, scheme := range core.Schemes() {
		c := cluster.New(cluster.Config{
			Backends:    4,
			Scheme:      scheme,
			Seed:        11,
			LocalWeight: -1,
			Gamma:       4,
		})
		ctl := c.EnableAdmission(admission.Config{Threshold: 0.7, Weights: core.WeightsFor(scheme)})
		c.StartTenantNoise(12)
		pool := c.StartRUBiS(192, 20*sim.Millisecond, 13)
		c.Run(2 * sim.Second)
		pool.ResetStats()
		a0, r0 := ctl.Admitted, ctl.Rejected
		c.Run(10 * sim.Second)

		good := 0
		for _, rt := range pool.All.Values() {
			if rt <= 100 {
				good++
			}
		}
		fmt.Printf("%-13s %10d %10d %12d %10.1f\n",
			scheme, ctl.Admitted-a0, ctl.Rejected-r0, good, pool.All.Percentile(99))
	}
	fmt.Println()
	fmt.Println("Stale monitoring either over-admits (SLA violations) or wastes")
	fmt.Println("capacity; kernel-direct records admit more and keep the objective.")
}
