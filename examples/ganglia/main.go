// Ganglia example: deploy a ganglia group over a simulated cluster,
// wire fine-grained monitoring records into gmetric, and show how the
// choice of scheme changes (a) what the group learns and (b) what the
// monitoring costs the back-ends.
//
//	go run ./examples/ganglia
package main

import (
	"fmt"

	"rdmamon/internal/core"
	"rdmamon/internal/ganglia"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/workload"
)

func main() {
	fmt.Println("Ganglia with gmetric-fed fine-grained load records (T=4ms)")
	fmt.Println()
	fmt.Printf("%-13s %12s %12s %14s %12s\n",
		"scheme", "published", "gmondRounds", "appDelay(%)", "probes")
	for _, scheme := range core.FourSchemes() {
		eng := sim.NewEngine(3)
		fab := simnet.NewFabric(eng, simnet.Defaults())

		var nodes []*simos.Node
		var nics []*simnet.NIC
		for i := 0; i < 4; i++ {
			n := simos.NewNode(eng, i, simos.NodeDefaults())
			nodes = append(nodes, n)
			nics = append(nics, fab.Attach(n))
		}
		g := ganglia.Deploy(fab, nodes, nics, ganglia.Defaults())

		// An application doing real work on back-end node 1 while the
		// fine-grained monitoring runs.
		app := workload.StartFPApp(nodes[1], 2, 10*sim.Millisecond)

		var agents []*core.Agent
		for i := 1; i < 4; i++ {
			agents = append(agents, core.StartAgent(nodes[i], nics[i], core.AgentConfig{
				Scheme: scheme, Interval: 4 * sim.Millisecond,
			}))
		}
		mon := core.StartMonitor(nodes[0], nics[0], agents, 4*sim.Millisecond)
		g.WireFineGrained(mon)

		eng.RunUntil(5 * sim.Second)

		fmt.Printf("%-13s %12d %12d %14.2f %12d\n",
			scheme, g.Gmetric.Published, g.Gmonds[1].Rounds,
			app.Delays.Mean()*100, mon.Cycles)
	}
	fmt.Println()
	fmt.Println("RDMA-Sync feeds ganglia at 4ms granularity without slowing the")
	fmt.Println("application at all; the socket schemes tax it (paper §5.2.2).")
}
